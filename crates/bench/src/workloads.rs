//! The benchmark suite: circuits and their preimage targets.

use presat_circuit::{embedded, generators, Circuit};
use presat_preimage::StateSet;

/// One benchmark instance: a circuit plus the target set whose preimage is
/// computed.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Short identifier used in table rows.
    pub label: String,
    /// The circuit.
    pub circuit: Circuit,
    /// The target state set.
    pub target: StateSet,
}

impl Workload {
    fn new(label: &str, circuit: Circuit, target: StateSet) -> Self {
        Workload {
            label: label.to_string(),
            circuit,
            target,
        }
    }
}

/// The main suite (tables R1–R3): mixed structural regimes, sized so the
/// slowest baseline still terminates in seconds.
pub fn suite() -> Vec<Workload> {
    let mut out = Vec::new();

    let s27 = embedded::s27().expect("embedded netlist");
    out.push(Workload::new(
        "s27",
        s27,
        StateSet::from_state_bits(0b110, 3),
    ));

    let ctl2 = embedded::ctl2().expect("embedded netlist");
    out.push(Workload::new(
        "ctl2",
        ctl2,
        StateSet::from_state_bits(0b11, 2),
    ));

    out.push(Workload::new(
        "cnt12e",
        generators::counter(12, true),
        StateSet::from_state_bits(0x0800, 12),
    ));

    out.push(Workload::new(
        "shift12",
        generators::shift_register(12),
        StateSet::from_partial(&[(11, true), (0, false)]),
    ));

    out.push(Workload::new(
        "lfsr12",
        generators::lfsr(12),
        StateSet::from_state_bits(0x013, 12),
    ));

    out.push(Workload::new(
        "parity8",
        generators::parity(8),
        StateSet::from_partial(&[(8, true)]),
    ));

    out.push(Workload::new(
        "parity10",
        generators::parity(10),
        StateSet::from_partial(&[(10, true)]),
    ));

    out.push(Workload::new(
        "arb4",
        generators::round_robin_arbiter(4),
        StateSet::from_partial(&[(4, true), (5, true)]),
    ));

    out.push(Workload::new(
        "cmp6",
        generators::comparator(6),
        StateSet::from_partial(&[(6, true)]),
    ));

    out.push(Workload::new(
        "gray10",
        generators::gray_counter(10),
        StateSet::from_state_bits(0x200, 10),
    ));

    out.push(Workload::new(
        "johnson12",
        generators::johnson_counter(12),
        StateSet::from_state_bits(0x00F, 12),
    ));

    out.push(Workload::new(
        "traffic",
        generators::traffic_controller(),
        StateSet::from_partial(&[(0, true), (2, true)]),
    ));

    out.push(Workload::new(
        "fifo6",
        generators::fifo_controller(6),
        StateSet::from_partial(&[(6, true)]),
    ));

    out.push(Workload::new(
        "rnd6x8",
        generators::random_dag(6, 8, 80, 2004),
        StateSet::from_partial(&[(0, true), (3, false)]),
    ));

    out
}

/// The scaling family for figures F1/F2: parity circuits whose preimage
/// has exactly `2^(n-1) · 2` solution minterms and no wider prime cubes —
/// the blocking-clause worst case with a linear-size solution graph.
pub fn scaling_workload(n: usize) -> Workload {
    Workload::new(
        &format!("parity{n}"),
        generators::parity(n),
        StateSet::from_partial(&[(n, true)]),
    )
}

/// The SAT-vs-BDD family for table R4: comparators, whose transition
/// function is exponential for the BDD engine's block variable order.
pub fn sat_vs_bdd_workload(n: usize) -> Workload {
    Workload::new(
        &format!("cmp{n}"),
        generators::comparator(n),
        StateSet::from_partial(&[(n, true)]),
    )
}

/// The reachability family for figure F3: counters (long chains, one new
/// state per iteration) and arbiters (fast convergence).
pub fn reach_workloads() -> Vec<Workload> {
    vec![
        Workload::new(
            "cnt5",
            generators::counter(5, false),
            StateSet::from_state_bits(0, 5),
        ),
        Workload::new(
            "cnt6e",
            generators::counter(6, true),
            StateSet::from_state_bits(0, 6),
        ),
        Workload::new(
            "arb3",
            generators::round_robin_arbiter(3),
            StateSet::from_partial(&[(3, true), (4, true)]),
        ),
        Workload::new(
            "shift8",
            generators::shift_register(8),
            StateSet::from_state_bits(0xFF, 8),
        ),
    ]
}

/// The ablation suite for figure F4: circuits where each mechanism
/// (signatures, model guidance, lifting) has visible leverage.
pub fn ablation_workloads() -> Vec<Workload> {
    vec![
        scaling_workload(8),
        Workload::new(
            "shift10",
            generators::shift_register(10),
            StateSet::from_partial(&[(9, true)]),
        ),
        Workload::new(
            "cmp5",
            generators::comparator(5),
            StateSet::from_partial(&[(5, true)]),
        ),
        Workload::new(
            "rnd5x6",
            generators::random_dag(5, 6, 60, 7),
            StateSet::from_partial(&[(1, true)]),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_circuits_validate() {
        for w in suite() {
            w.circuit
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", w.label));
            assert!(!w.target.is_empty());
        }
    }

    #[test]
    fn families_are_well_formed() {
        for n in [4, 8] {
            scaling_workload(n).circuit.validate().unwrap();
            sat_vs_bdd_workload(n).circuit.validate().unwrap();
        }
        for w in reach_workloads().into_iter().chain(ablation_workloads()) {
            w.circuit.validate().unwrap();
        }
    }
}
