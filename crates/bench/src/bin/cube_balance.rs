//! Cube-balance sweep (table R11 of `EXPERIMENTS.md`): static prefix
//! partitioning vs adaptive cube-and-conquer (lookahead-scored initial
//! split plus dynamic work splitting) on the success-driven preimage
//! workloads at 1, 2 and 4 worker threads, written as `BENCH_PR8.json`.
//! Run via `scripts/bench.sh` or directly:
//!
//! ```text
//! cargo run --release -p presat-bench --bin cube_balance [out.json]
//! ```
//!
//! Two sections:
//!
//! * `preimage_step` — one-step preimages with the spawn gate disabled
//!   (`par_threshold = 0`), so both partitioners really run the worker
//!   fleet even when the encoding is small. Each record carries the
//!   sequential baseline, per-mode medians, speedups at 4 threads, the
//!   *default-configuration* numbers (`gated_*`: spawn gate active, which
//!   on a host without hardware parallelism correctly refuses to spawn),
//!   and the balance counters (`cubes_split`, `lookahead_probes`,
//!   `max_cube_conflicts`, `steal_waits`) of one adaptive 4-thread run.
//! * `reach_gate` — backward reachability on deliberately tiny circuits
//!   with the *default* spawn gate active: the adaptive gate must keep the
//!   4-thread engine within noise of 1 thread by never spawning the fleet
//!   on encodings too small to amortize it (`ratio_x4` ≈ 1).
//!
//! Every timed case first asserts that both partitioning modes produce a
//! state set structurally identical to the sequential engine's — the
//! numbers are only meaningful if the engines do the same job. The JSON
//! records `cpu_count` so readers can judge the speedups against the
//! hardware: on a single-CPU host the threads serialize and speedup ≈ 1
//! is the honest expected outcome.

use presat_bench::harness::fmt_duration;
use presat_bench::workloads::{reach_workloads, scaling_workload, suite, Workload};
use presat_obs::json::{self, JsonObject};
use presat_preimage::{backward_reach, PreimageEngine, ReachOptions, SatPreimage};

const JOBS: [usize; 3] = [1, 2, 4];

fn samples() -> usize {
    std::env::var("PRESAT_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// The preimage engine under test: success-driven, `jobs` workers, the
/// spawn gate disabled so the partitioner really runs, and the requested
/// partitioning mode.
fn engine(jobs: usize, adaptive: bool) -> SatPreimage {
    SatPreimage::success_driven()
        .with_jobs(jobs)
        .with_adaptive(adaptive)
        .with_par_threshold(0)
}

/// Times one step workload across both partitioning modes and appends a
/// `{label: {...}}` record with the sequential baseline, per-mode medians
/// and 4-thread speedups, plus the balance counters of one adaptive run.
///
/// The configurations are sampled *interleaved* — round-robin, one run of
/// each per round — rather than one `measure` group after another, so
/// machine-load drift over the sweep biases every configuration equally
/// instead of whichever ran last. The last configuration is the *default*
/// one (spawn gate active at 4 threads): what a user who just says
/// `--jobs 4` gets. On hosts with real parallelism the gate lets steps
/// this size fan out; on a single-CPU host it routes them sequentially,
/// so jobs 4 stays at parity with 1 thread instead of paying fleet
/// overhead for nothing.
fn step_case(out: &mut JsonObject, w: &Workload, samples: usize) {
    type Run = Box<dyn Fn(&Workload) -> u64>;
    let configs: Vec<(String, Run)> = std::iter::once((
        "seq_ns".to_string(),
        Box::new(|w: &Workload| {
            SatPreimage::success_driven()
                .preimage(&w.circuit, &w.target)
                .stats
                .result_cubes
        }) as Run,
    ))
    .chain([("static", false), ("adaptive", true)].into_iter().flat_map(
        |(mode, adaptive)| {
            JOBS[1..].iter().map(move |&jobs| {
                (
                    format!("{mode}_jobs_{jobs}_ns"),
                    Box::new(move |w: &Workload| {
                        engine(jobs, adaptive)
                            .preimage(&w.circuit, &w.target)
                            .stats
                            .result_cubes
                    }) as Run,
                )
            })
        },
    ))
    .chain([
        // Forced split storm: threshold 1 makes every cube that survives
        // a single conflict split, so the dynamic-splitting machinery is
        // actually exercised (the suite workloads rarely conflict at the
        // default threshold of 1024).
        (
            "storm_jobs_4_ns".to_string(),
            Box::new(|w: &Workload| {
                engine(4, true)
                    .with_split_threshold(1)
                    .preimage(&w.circuit, &w.target)
                    .stats
                    .result_cubes
            }) as Run,
        ),
        (
            "gated_jobs_4_ns".to_string(),
            Box::new(|w: &Workload| {
                SatPreimage::success_driven()
                    .with_jobs(4)
                    .preimage(&w.circuit, &w.target)
                    .stats
                    .result_cubes
            }) as Run,
        ),
    ])
    .collect();

    // Round-robin sampling; round 0 is the untimed warm-up.
    let mut times: Vec<Vec<u64>> = vec![Vec::with_capacity(samples); configs.len()];
    for round in 0..=samples {
        for (slot, (_, run)) in configs.iter().enumerate() {
            let t0 = std::time::Instant::now();
            std::hint::black_box(run(w));
            let ns = t0.elapsed().as_nanos() as u64;
            if round > 0 {
                times[slot].push(ns);
            }
        }
    }

    out.begin_object(&w.label);
    let mut medians = Vec::with_capacity(configs.len());
    for (slot, (field, _)) in configs.iter().enumerate() {
        times[slot].sort_unstable();
        let median = times[slot][times[slot].len() / 2];
        medians.push(median);
        println!(
            "{:<28} {:<18} median {:>10}  (min {}, max {})",
            w.label,
            field.trim_end_matches("_ns"),
            fmt_duration(std::time::Duration::from_nanos(median)),
            fmt_duration(std::time::Duration::from_nanos(times[slot][0])),
            fmt_duration(std::time::Duration::from_nanos(
                times[slot][times[slot].len() - 1]
            )),
        );
        out.field_u64(field, median);
    }
    let seq_ns = medians[0];
    for (slot, (field, _)) in configs.iter().enumerate() {
        let Some(mode) = field.strip_suffix("_jobs_4_ns") else {
            continue;
        };
        let speedup = if medians[slot] == 0 {
            0.0
        } else {
            seq_ns as f64 / medians[slot] as f64
        };
        out.field_f64(&format!("{mode}_speedup_x4"), round3(speedup));
    }

    // Balance counters from one adaptive 4-thread run: how many dynamic
    // splits fired, how much lookahead was spent scoring, how lopsided the
    // worst finished cube still was, and how often workers idled.
    let balance = engine(4, true).preimage(&w.circuit, &w.target);
    out.field_u64("cubes_split", balance.stats.allsat.cubes_split)
        .field_u64(
            "lookahead_probes",
            balance.stats.allsat.sat.lookahead_probes,
        )
        .field_u64(
            "max_cube_conflicts",
            balance.stats.allsat.max_cube_conflicts,
        )
        .field_u64("steal_waits", balance.stats.allsat.steal_waits);
    // And from the forced storm, where splitting actually fires.
    let storm = engine(4, true)
        .with_split_threshold(1)
        .preimage(&w.circuit, &w.target);
    out.field_u64("storm_cubes_split", storm.stats.allsat.cubes_split)
        .field_u64("storm_steal_waits", storm.stats.allsat.steal_waits);
    out.end_object();
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());
    let samples = samples();
    let cpus = presat_allsat::effective_jobs(0);
    println!("# cube balance sweep ({samples} samples per case, {cpus} CPU(s) available)");

    let mut o = JsonObject::new();
    o.field_str("bench", "cube_balance")
        .field_u64("cpu_count", cpus as u64)
        .field_u64("samples", samples as u64);

    // The step suite spans the structural regimes the partitioners care
    // about: parity11 (balanced, every cube equally hard), rnd6x8
    // (irregular random logic), cmp6 (correlated outputs), and cnt12e — a
    // deliberately skewed family whose preimage is a single state, so all
    // but one initial cube is immediately UNSAT and static partitioning
    // strands the whole workload on one worker.
    let step_workloads: Vec<Workload> = suite()
        .into_iter()
        .filter(|w| matches!(w.label.as_str(), "rnd6x8" | "cmp6" | "cnt12e"))
        .chain([scaling_workload(11)])
        .collect();

    // Determinism gate: before timing anything, check structural equality
    // against the sequential engine for both modes on every workload we
    // are about to measure.
    for w in &step_workloads {
        let seq = SatPreimage::success_driven().preimage(&w.circuit, &w.target);
        for &jobs in &JOBS[1..] {
            for adaptive in [false, true] {
                let par = engine(jobs, adaptive).preimage(&w.circuit, &w.target);
                assert_eq!(
                    par.states.cubes(),
                    seq.states.cubes(),
                    "{}: adaptive={adaptive} result diverged at jobs={jobs}",
                    w.label
                );
            }
        }
    }

    o.begin_object("preimage_step");
    for w in &step_workloads {
        step_case(&mut o, w, samples);
    }
    o.end_object();

    // Spawn-gate check: tiny reachability workloads at the *default*
    // threshold. A 4-thread engine must stay within noise of 1 thread
    // because the gate routes every under-threshold step to the
    // sequential path instead of paying fleet startup per iteration.
    o.begin_object("reach_gate");
    for w in reach_workloads() {
        let seq = backward_reach(
            &SatPreimage::success_driven(),
            &w.circuit,
            &w.target,
            ReachOptions::default(),
        );
        let par = backward_reach(
            &SatPreimage::success_driven().with_jobs(4),
            &w.circuit,
            &w.target,
            ReachOptions::default(),
        );
        assert_eq!(
            par.reached.cubes(),
            seq.reached.cubes(),
            "{}: gated parallel reach diverged",
            w.label
        );

        // Interleaved like step_case: these workloads run in the tens to
        // hundreds of microseconds, where back-to-back `measure` groups
        // let machine-load drift masquerade as a jobs-count effect.
        let mut times: [Vec<u64>; 2] = [Vec::with_capacity(samples), Vec::with_capacity(samples)];
        for round in 0..=samples {
            for (slot, jobs) in [1usize, 4].into_iter().enumerate() {
                let t0 = std::time::Instant::now();
                std::hint::black_box(
                    backward_reach(
                        &SatPreimage::success_driven().with_jobs(jobs),
                        &w.circuit,
                        &w.target,
                        ReachOptions::default(),
                    )
                    .reached_states,
                );
                let ns = t0.elapsed().as_nanos() as u64;
                if round > 0 {
                    times[slot].push(ns);
                }
            }
        }
        let mut medians = [0u64; 2];
        for (slot, jobs) in [1usize, 4].into_iter().enumerate() {
            times[slot].sort_unstable();
            medians[slot] = times[slot][times[slot].len() / 2];
            println!(
                "{:<28} gated    jobs={jobs}  median {:>10}  (min {}, max {})",
                w.label,
                fmt_duration(std::time::Duration::from_nanos(medians[slot])),
                fmt_duration(std::time::Duration::from_nanos(times[slot][0])),
                fmt_duration(std::time::Duration::from_nanos(
                    times[slot][times[slot].len() - 1]
                )),
            );
        }
        let ratio = if medians[1] == 0 {
            0.0
        } else {
            medians[0] as f64 / medians[1] as f64
        };
        o.begin_object(&w.label);
        o.field_u64("jobs_1_ns", medians[0])
            .field_u64("jobs_4_ns", medians[1])
            .field_f64("ratio_x4", round3(ratio));
        o.end_object();
    }
    o.end_object();

    let text = o.finish();
    json::validate(&text).expect("emitted JSON must be well-formed");
    std::fs::write(&out_path, format!("{text}\n")).expect("cannot write output file");
    println!("wrote {out_path}");
}
