//! Regenerates every reconstructed table and figure of `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p presat-bench --bin tables          # everything
//! cargo run --release -p presat-bench --bin tables -- r2 f1 # a subset
//! cargo run --release -p presat-bench --bin tables -- csv   # raw counters
//! ```
//!
//! Output is Markdown, printed to stdout, one section per experiment id
//! (R1–R4 tables, F1–F4 figure series). Every number comes from the
//! `presat-obs` counters threaded through the engines; the `csv` id dumps
//! the full per-run counter snapshots (`presat_obs::Stats`) as CSV for
//! offline analysis.

use std::time::{Duration, Instant};

use presat_allsat::SignatureMode;
use presat_bench::workloads::{
    self, ablation_workloads, reach_workloads, sat_vs_bdd_workload, scaling_workload, Workload,
};
use presat_circuit::cone;
use presat_obs::Stats;
use presat_preimage::{
    backward_reach, BddPreimage, PreimageEngine, PreimageResult, ReachOptions, SatPreimage,
    StepEncoding,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a.eq_ignore_ascii_case(id));

    if want("r1") {
        table_r1();
    }
    if want("r2") {
        table_r2();
    }
    if want("r3") {
        table_r3();
    }
    if want("r4") {
        table_r4();
    }
    if want("f1") {
        figure_f1();
    }
    if want("f2") {
        figure_f2();
    }
    if want("f3") {
        figure_f3();
    }
    if want("f4") {
        figure_f4();
    }
    if want("e1") {
        table_e1();
    }
    if want("e2") {
        table_e2();
    }
    // The raw CSV dump is opt-in only: it is data, not a Markdown section.
    if args.iter().any(|a| a.eq_ignore_ascii_case("csv")) {
        dump_csv();
    }
}

/// `csv` — one `presat_obs::Stats` row per engine × main-suite workload,
/// the machine-readable companion to tables R2/R3.
fn dump_csv() {
    println!("{}", Stats::csv_header());
    let engines: Vec<(&str, Box<dyn PreimageEngine>)> = vec![
        ("sat-blocking", Box::new(SatPreimage::blocking())),
        ("sat-min-blocking", Box::new(SatPreimage::min_blocking())),
        ("sat-success-driven", Box::new(SatPreimage::success_driven())),
        ("bdd-sub", Box::new(BddPreimage::substitution())),
    ];
    for w in workloads::suite() {
        for (name, engine) in &engines {
            let r = engine.preimage(&w.circuit, &w.target);
            let stats = Stats::from_preimage(format!("{name}/{}", w.label), &r.stats);
            println!("{}", stats.to_csv_row());
        }
    }
}

/// E2 (extension) — branching-order sensitivity of the solution graph,
/// the all-SAT analogue of BDD variable-ordering sensitivity.
fn table_e2() {
    use presat_allsat::{
        order_important, AllSatEngine, AllSatProblem, BranchOrder, SuccessDrivenAllSat,
    };
    println!("\n## E2 — branching-order sensitivity (success-driven engine)\n");
    println!("| circuit | order | graph nodes | solver calls | cache hits |");
    println!("|---|---|---:|---:|---:|");
    let picks = ["parity8", "shift12", "cmp6", "arb4"];
    for w in workloads::suite() {
        if !picks.contains(&w.label.as_str()) {
            continue;
        }
        let enc = StepEncoding::build(&w.circuit, &w.target);
        for order in [
            BranchOrder::Natural,
            BranchOrder::Reversed,
            BranchOrder::OccurrenceDescending,
            BranchOrder::Shuffled(2004),
        ] {
            let ordered = order_important(enc.cnf(), &enc.state_vars(), order);
            let problem = AllSatProblem::new(enc.cnf().clone(), ordered);
            let r = SuccessDrivenAllSat::new().enumerate(&problem);
            println!(
                "| {} | {:?} | {} | {} | {} |",
                w.label, order, r.stats.graph_nodes, r.stats.solver_calls, r.stats.cache_hits,
            );
        }
    }
}

/// E1 (extension) — unrolled k-step preimage vs k iterated one-step
/// preimages. Both compute the exact-k-step set; the unrolled instance
/// amortizes the search across frames.
fn table_e1() {
    use presat_preimage::k_step_preimage;
    println!("\n## E1 — unrolled vs iterated k-step preimage\n");
    println!("| circuit | k | states | unrolled ms | iterated ms |");
    println!("|---|---:|---:|---:|---:|");
    let cases = [
        ("cnt10", presat_circuit::generators::counter(10, false), presat_preimage::StateSet::from_state_bits(512, 10)),
        ("lfsr10", presat_circuit::generators::lfsr(10), presat_preimage::StateSet::from_state_bits(37, 10)),
        ("arb3", presat_circuit::generators::round_robin_arbiter(3), presat_preimage::StateSet::from_partial(&[(3, true)])),
    ];
    for (label, circuit, target) in cases {
        let n = circuit.num_latches();
        for k in [1usize, 2, 4, 8] {
            let t0 = Instant::now();
            let unrolled = k_step_preimage(&circuit, &target, k);
            let t_unrolled = t0.elapsed();

            let t0 = Instant::now();
            let engine = SatPreimage::success_driven();
            let mut layer = target.clone();
            for _ in 0..k {
                layer = engine.preimage(&circuit, &layer).states;
            }
            let t_iterated = t0.elapsed();

            assert_eq!(
                unrolled.states.minterm_count(n),
                layer.minterm_count(n),
                "{label} k={k}: unrolled and iterated disagree"
            );
            println!(
                "| {} | {} | {} | {} | {} |",
                label,
                k,
                unrolled.states.minterm_count(n),
                ms(t_unrolled),
                ms(t_iterated),
            );
        }
    }
}

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn timed(engine: &dyn PreimageEngine, w: &Workload) -> (Duration, PreimageResult) {
    let t0 = Instant::now();
    let r = engine.preimage(&w.circuit, &w.target);
    (t0.elapsed(), r)
}

/// R1 — benchmark characteristics.
fn table_r1() {
    println!("\n## R1 — benchmark characteristics\n");
    println!("| circuit | PI | latches | AND gates | CNF vars | CNF clauses | target cubes |");
    println!("|---|---:|---:|---:|---:|---:|---:|");
    for w in workloads::suite() {
        let enc = StepEncoding::build(&w.circuit, &w.target);
        let roots = w.circuit.next_state_fns();
        let _cone = cone::cone_size(w.circuit.aig(), &roots);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            w.label,
            w.circuit.num_inputs(),
            w.circuit.num_latches(),
            w.circuit.aig().and_count(),
            enc.cnf().num_vars(),
            enc.cnf().num_clauses(),
            w.target.num_cubes(),
        );
    }
}

/// R2 — single-step preimage across the three SAT engines. The decision
/// and conflict columns come from the CDCL snapshot nested inside each
/// run's counters (`stats.allsat.sat`), not from wall-clock proxies.
fn table_r2() {
    println!("\n## R2 — single-step preimage: SAT engines\n");
    println!(
        "| circuit | solutions | blk time ms | blk cubes | min time ms | min cubes | sd time ms | sd cubes | sd graph | sd decisions | sd conflicts |"
    );
    println!("|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|");
    for w in workloads::suite() {
        let n = w.circuit.num_latches();
        let (t_b, r_b) = timed(&SatPreimage::blocking(), &w);
        let (t_m, r_m) = timed(&SatPreimage::min_blocking(), &w);
        let (t_s, r_s) = timed(&SatPreimage::success_driven(), &w);
        let solutions = r_s.states.minterm_count(n);
        assert_eq!(solutions, r_b.states.minterm_count(n), "{}", w.label);
        assert_eq!(solutions, r_m.states.minterm_count(n), "{}", w.label);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} |",
            w.label,
            solutions,
            ms(t_b),
            r_b.stats.result_cubes,
            ms(t_m),
            r_m.stats.result_cubes,
            ms(t_s),
            r_s.stats.result_cubes,
            r_s.stats.graph_nodes,
            r_s.stats.allsat.sat.decisions,
            r_s.stats.allsat.sat.conflicts,
        );
    }
}

/// R3 — memory proxy: blocking clauses vs solution-graph nodes.
fn table_r3() {
    println!("\n## R3 — memory proxy and reuse\n");
    println!(
        "| circuit | blk clauses | min clauses | sd graph nodes | sd cache hits | sd solver calls | blk solver calls |"
    );
    println!("|---|---:|---:|---:|---:|---:|---:|");
    for w in workloads::suite() {
        let (_, r_b) = timed(&SatPreimage::blocking(), &w);
        let (_, r_m) = timed(&SatPreimage::min_blocking(), &w);
        let (_, r_s) = timed(&SatPreimage::success_driven(), &w);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            w.label,
            r_b.stats.blocking_clauses,
            r_m.stats.blocking_clauses,
            r_s.stats.graph_nodes,
            r_s.stats.cache_hits,
            r_s.stats.solver_calls,
            r_b.stats.solver_calls,
        );
    }
}

/// R4 — SAT vs BDD with the comparator crossover.
///
/// The monolithic transition relation must correlate the whole `A` state
/// block with the whole `B` input block across the variable order, so its
/// BDD grows as `4^n`; the sweep caps it at `n = 8` (at `n = 14` it needs
/// >10 GB). The substitution strategy survives longer but still carries
/// > the `2^n` comparator BDD. The SAT engine is untouched by the order.
fn table_r4() {
    println!("\n## R4 — SAT vs BDD (comparator family)\n");
    println!(
        "| n | sd time ms | sd graph | sd conflicts | bdd-sub time ms | bdd-sub nodes | bdd-mono time ms | bdd-mono nodes |"
    );
    println!("|---:|---:|---:|---:|---:|---:|---:|---:|");
    const MONO_CAP: usize = 8;
    for n in [4usize, 6, 8, 10, 12] {
        let w = sat_vs_bdd_workload(n);
        let nl = w.circuit.num_latches();
        let (t_s, r_s) = timed(&SatPreimage::success_driven(), &w);
        let (t_sub, r_sub) = timed(&BddPreimage::substitution(), &w);
        assert_eq!(
            r_s.states.minterm_count(nl),
            r_sub.states.minterm_count(nl)
        );
        let mono_cells = if n <= MONO_CAP {
            let (t_mono, r_mono) = timed(&BddPreimage::monolithic(), &w);
            assert_eq!(
                r_s.states.minterm_count(nl),
                r_mono.states.minterm_count(nl)
            );
            format!("{} | {}", ms(t_mono), r_mono.stats.bdd_nodes)
        } else {
            "mem-out | mem-out".to_string()
        };
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            n,
            ms(t_s),
            r_s.stats.graph_nodes,
            r_s.stats.allsat.sat.conflicts,
            ms(t_sub),
            r_sub.stats.bdd_nodes,
            mono_cells,
        );
    }
}

/// F1 — runtime vs number of solutions (scaling curves).
fn figure_f1() {
    println!("\n## F1 — runtime vs #solutions (parity family)\n");
    println!("| n | solutions | blocking ms | min-blocking ms | success-driven ms |");
    println!("|---:|---:|---:|---:|---:|");
    for n in [4usize, 6, 8, 10, 12] {
        let w = scaling_workload(n);
        let nl = w.circuit.num_latches();
        let (t_b, r_b) = timed(&SatPreimage::blocking(), &w);
        let (t_m, _) = timed(&SatPreimage::min_blocking(), &w);
        let (t_s, r_s) = timed(&SatPreimage::success_driven(), &w);
        assert_eq!(
            r_b.states.minterm_count(nl),
            r_s.states.minterm_count(nl)
        );
        println!(
            "| {} | {} | {} | {} | {} |",
            n,
            r_s.states.minterm_count(nl),
            ms(t_b),
            ms(t_m),
            ms(t_s),
        );
    }
}

/// F2 — representation size vs number of solutions.
fn figure_f2() {
    println!("\n## F2 — blocking clauses vs solution-graph size (parity family)\n");
    println!("| n | solutions | blocking clauses | min-blocking clauses | graph nodes |");
    println!("|---:|---:|---:|---:|---:|");
    for n in [4usize, 6, 8, 10, 12] {
        let w = scaling_workload(n);
        let nl = w.circuit.num_latches();
        let (_, r_b) = timed(&SatPreimage::blocking(), &w);
        let (_, r_m) = timed(&SatPreimage::min_blocking(), &w);
        let (_, r_s) = timed(&SatPreimage::success_driven(), &w);
        println!(
            "| {} | {} | {} | {} | {} |",
            n,
            r_s.states.minterm_count(nl),
            r_b.stats.blocking_clauses,
            r_m.stats.blocking_clauses,
            r_s.stats.graph_nodes,
        );
    }
}

/// F3 — backward reachability per-iteration series.
fn figure_f3() {
    println!("\n## F3 — backward reachability to fixed point (success-driven engine)\n");
    for w in reach_workloads() {
        let t0 = Instant::now();
        let report = backward_reach(
            &SatPreimage::success_driven(),
            &w.circuit,
            &w.target,
            ReachOptions::default(),
        );
        let total = t0.elapsed();
        println!(
            "\n### {} — {} iterations, {} states, {} total\n",
            w.label,
            report.iterations.len(),
            report.reached_states,
            format_args!("{:.2?}", total),
        );
        println!("| iter | frontier cubes | new states | reached | iter ms |");
        println!("|---:|---:|---:|---:|---:|");
        for row in report.iterations.iter() {
            println!(
                "| {} | {} | {} | {} | {} |",
                row.iteration,
                row.frontier_cubes,
                row.new_states,
                row.reached_states,
                ms(row.elapsed),
            );
        }
    }
}

/// F4 — ablation: each mechanism toggled.
fn figure_f4() {
    println!("\n## F4 — ablation (time ms / solver calls / memory proxy)\n");
    let configs: Vec<(&str, Box<dyn PreimageEngine>)> = vec![
        ("sd full", Box::new(SatPreimage::success_driven())),
        (
            "sd static-sig",
            Box::new(SatPreimage::success_driven_with(SignatureMode::Static, true)),
        ),
        (
            "sd no-reuse",
            Box::new(SatPreimage::success_driven_with(SignatureMode::None, true)),
        ),
        (
            "sd no-guidance",
            Box::new(SatPreimage::success_driven_with(
                SignatureMode::Dynamic,
                false,
            )),
        ),
        (
            "sd bare",
            Box::new(SatPreimage::success_driven_with(SignatureMode::None, false)),
        ),
        ("min-blocking", Box::new(SatPreimage::min_blocking())),
        ("blocking", Box::new(SatPreimage::blocking())),
    ];
    for w in ablation_workloads() {
        println!("\n### {}\n", w.label);
        println!("| engine | time ms | solver calls | blocking clauses | graph nodes | cache hits |");
        println!("|---|---:|---:|---:|---:|---:|");
        for (name, engine) in &configs {
            let (t, r) = timed(engine.as_ref(), &w);
            println!(
                "| {} | {} | {} | {} | {} | {} |",
                name,
                ms(t),
                r.stats.solver_calls,
                r.stats.blocking_clauses,
                r.stats.graph_nodes,
                r.stats.cache_hits,
            );
        }
    }
}
