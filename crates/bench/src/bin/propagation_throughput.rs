//! Propagation-throughput probe (tables R8 and R10 of `EXPERIMENTS.md`):
//! the flat `u32` clause arena vs. the pre-arena Vec-of-Vec clause store,
//! measured on pure BCP sweeps through [`Solver::propagate_under`], plus a
//! root-level inprocessing row on the churn workload. Written as
//! `BENCH_PR7.json`:
//!
//! ```text
//! cargo run --release -p presat-bench --bin propagation_throughput [out.json]
//! ```
//!
//! The baseline is an in-binary replica of the solver's watcher algorithm
//! (same blocker fast path, same binary shortcut, same replacement-watch
//! scan, same propagation counting) whose only difference is the clause
//! store: one `Vec<Lit>` heap allocation per clause behind a clause index,
//! exactly the layout the arena replaced. Every probe is first run through
//! both engines and the results (implied assignment or conflict) and
//! propagation counts are asserted identical, so the timed sweeps compare
//! equal work and the run doubles as a determinism check.
//!
//! Memory is reported alongside: the solver's resident arena bytes (the
//! `arena_bytes` stats gauge) vs. the byte-accounted Vec-of-Vec store
//! (per-clause struct + each `Vec<Lit>` buffer).

use presat_bench::harness::{fmt_duration, measure};
use presat_logic::rng::SplitMix64;
use presat_logic::{Assignment, Cnf, Lit, Var};
use presat_obs::json::JsonObject;
use presat_sat::Solver;

fn samples() -> usize {
    std::env::var("PRESAT_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

// ---------------------------------------------------------------------------
// Vec-of-Vec baseline: the clause layout the flat arena replaced.
// ---------------------------------------------------------------------------

/// One heap-allocated clause, with the same per-clause metadata the old
/// `Clause` struct carried. The extra fields are never read here (pure BCP
/// needs none of them) but they must exist so `size_of::<BoxedClause>()`
/// charges the baseline the footprint it actually had.
#[allow(dead_code)]
#[derive(Clone)]
struct BoxedClause {
    lits: Vec<Lit>,
    learnt: bool,
    lbd: u32,
    activity: f64,
    deleted: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Val {
    True,
    False,
    Undef,
}

#[derive(Clone, Copy)]
struct Watcher {
    cref: usize,
    blocker: Lit,
    binary: bool,
}

/// A unit-propagation-only replica of the solver over the boxed store:
/// identical two-watched-literal scheme, identical counting, and the same
/// per-enqueue bookkeeping (level, reason slot) and per-backtrack work
/// (phase save, reason clear) the solver pays — so the only variable left
/// between the timed engines is the clause memory layout.
#[derive(Clone)]
struct VecVecBcp {
    clauses: Vec<BoxedClause>,
    /// Indexed by `lit.code()`: watchers triggered when `lit` is assigned.
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<Val>,
    levels: Vec<u32>,
    reasons: Vec<Option<usize>>,
    phase: Vec<bool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    propagations: u64,
}

impl VecVecBcp {
    fn from_cnf(cnf: &Cnf) -> Self {
        let n = cnf.num_vars();
        let mut s = VecVecBcp {
            clauses: Vec::new(),
            watches: vec![Vec::new(); 2 * n],
            assigns: vec![Val::Undef; n],
            levels: vec![0; n],
            reasons: vec![None; n],
            phase: vec![false; n],
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            propagations: 0,
        };
        for clause in cnf.clauses() {
            let lits: Vec<Lit> = clause.to_vec();
            assert!(lits.len() >= 2, "workload clauses are all non-unit");
            let cref = s.clauses.len();
            let (l0, l1, binary) = (lits[0], lits[1], lits.len() == 2);
            s.watches[(!l0).code()].push(Watcher {
                cref,
                blocker: l1,
                binary,
            });
            s.watches[(!l1).code()].push(Watcher {
                cref,
                blocker: l0,
                binary,
            });
            s.clauses.push(BoxedClause {
                lits,
                learnt: false,
                lbd: 0,
                activity: 0.0,
                deleted: false,
            });
        }
        s
    }

    /// Retirement the way the pre-arena store did it: set the tombstone
    /// flag and keep the literal buffer allocated forever (the old
    /// `ClauseDb` never compacted — "tombstones keep `ClauseRef`s
    /// stable"). Watchers are pruned lazily on the next visit, also as
    /// before.
    fn tombstone(&mut self, cref: usize) {
        self.clauses[cref].deleted = true;
    }

    /// Resident bytes of the clause store: the boxed-clause structs plus
    /// every per-clause literal buffer.
    fn clause_store_bytes(&self) -> u64 {
        let structs = self.clauses.capacity() * std::mem::size_of::<BoxedClause>();
        let buffers: usize = self
            .clauses
            .iter()
            .map(|c| c.lits.capacity() * std::mem::size_of::<Lit>())
            .sum();
        (structs + buffers) as u64
    }

    #[inline]
    fn lit_value(&self, l: Lit) -> Val {
        match self.assigns[l.var().index()] {
            Val::Undef => Val::Undef,
            Val::True => {
                if l.is_pos() {
                    Val::True
                } else {
                    Val::False
                }
            }
            Val::False => {
                if l.is_pos() {
                    Val::False
                } else {
                    Val::True
                }
            }
        }
    }

    #[inline]
    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) {
        debug_assert!(self.lit_value(lit) == Val::Undef);
        let v = lit.var().index();
        self.assigns[v] = if lit.is_pos() { Val::True } else { Val::False };
        self.levels[v] = self.trail_lim.len() as u32;
        self.reasons[v] = reason;
        self.trail.push(lit);
    }

    /// The solver's `propagate`, line for line, over the boxed store;
    /// returns `true` on conflict.
    fn propagate(&mut self) -> bool {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < ws.len() {
                let w = ws[i];
                if self.lit_value(w.blocker) == Val::True {
                    i += 1;
                    continue;
                }
                if w.binary {
                    if self.lit_value(w.blocker) == Val::False {
                        self.watches[p.code()] = ws;
                        self.qhead = self.trail.len();
                        return true;
                    }
                    self.enqueue(w.blocker, Some(w.cref));
                    i += 1;
                    continue;
                }
                if self.clauses[w.cref].deleted {
                    ws.swap_remove(i);
                    continue;
                }
                let false_lit = !p;
                if self.clauses[w.cref].lits[0] == false_lit {
                    self.clauses[w.cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[w.cref].lits[1], false_lit);
                let first = self.clauses[w.cref].lits[0];
                if first != w.blocker && self.lit_value(first) == Val::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                let mut replaced = false;
                for k in 2..self.clauses[w.cref].lits.len() {
                    let lk = self.clauses[w.cref].lits[k];
                    if self.lit_value(lk) != Val::False {
                        self.clauses[w.cref].lits.swap(1, k);
                        self.watches[(!lk).code()].push(Watcher {
                            cref: w.cref,
                            blocker: first,
                            binary: false,
                        });
                        ws.swap_remove(i);
                        replaced = true;
                        break;
                    }
                }
                if replaced {
                    continue;
                }
                if self.lit_value(first) == Val::False {
                    self.watches[p.code()] = ws;
                    self.qhead = self.trail.len();
                    return true;
                }
                self.enqueue(first, Some(w.cref));
                i += 1;
            }
            self.watches[p.code()] = ws;
        }
        false
    }

    /// Mirrors [`Solver::propagate_under`]: propagate each assumption at
    /// its own decision level, return the implied assignment or `None` on
    /// conflict, then backtrack to the (empty — the workloads have no
    /// level-0 units) root trail with the solver's per-literal unwind work.
    fn propagate_under(&mut self, assumptions: &[Lit]) -> Option<Assignment> {
        let mut failed = false;
        for &p in assumptions {
            match self.lit_value(p) {
                Val::True => continue,
                Val::False => {
                    failed = true;
                    break;
                }
                Val::Undef => {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(p, None);
                    if self.propagate() {
                        failed = true;
                        break;
                    }
                }
            }
        }
        let result = if failed {
            None
        } else {
            let mut a = Assignment::new(self.assigns.len());
            for (i, &v) in self.assigns.iter().enumerate() {
                match v {
                    Val::True => a.assign(Var::new(i), true),
                    Val::False => a.assign(Var::new(i), false),
                    Val::Undef => {}
                }
            }
            Some(a)
        };
        for idx in (0..self.trail.len()).rev() {
            let lit = self.trail[idx];
            let v = lit.var().index();
            self.phase[v] = lit.is_pos();
            self.assigns[v] = Val::Undef;
            self.reasons[v] = None;
        }
        self.trail.clear();
        self.trail_lim.clear();
        self.qhead = 0;
        result
    }
}

// ---------------------------------------------------------------------------
// Workloads: pure-BCP formulas with seeded probe sets.
// ---------------------------------------------------------------------------

struct Workload {
    label: &'static str,
    cnf: Cnf,
    probes: Vec<Vec<Lit>>,
}

/// A ternary implication chain `(¬x_i ∨ ¬g ∨ x_{i+1})` behind one guard:
/// each probe `[g, x_s]` walks the tail of the chain one unit propagation
/// (one arena visit) per link. No binary shortcut applies, so every
/// propagation touches clause memory.
fn chain3(links: usize, probes: usize) -> Workload {
    let guard = Var::new(links);
    let mut cnf = Cnf::new(links + 1);
    for i in 0..links - 1 {
        cnf.add_clause(vec![
            Lit::neg(Var::new(i)),
            Lit::neg(guard),
            Lit::pos(Var::new(i + 1)),
        ]);
    }
    let probes = (0..probes)
        .map(|k| {
            let start = (k * 97) % (links / 2);
            vec![Lit::pos(guard), Lit::pos(Var::new(start))]
        })
        .collect();
    Workload {
        label: "chain3",
        cnf,
        probes,
    }
}

/// Random 3-SAT (distinct variables per clause) with wider random probe
/// assumptions; some probes cascade, some conflict, and both engines must
/// agree on each. Exercises scattered watch lists rather than one long
/// chain.
fn rand3(vars: usize, clauses: usize, probes: usize, probe_width: usize, seed: u64) -> Workload {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let distinct = |rng: &mut SplitMix64, k: usize| {
        let mut vs: Vec<usize> = Vec::with_capacity(k);
        while vs.len() < k {
            let v = rng.gen_range(0..vars);
            if !vs.contains(&v) {
                vs.push(v);
            }
        }
        vs
    };
    let mut cnf = Cnf::new(vars);
    for _ in 0..clauses {
        let vs = distinct(&mut rng, 3);
        cnf.add_clause(
            vs.iter()
                .map(|&v| Lit::with_phase(Var::new(v), rng.gen_bool(0.5)))
                .collect::<Vec<_>>(),
        );
    }
    let probes = (0..probes)
        .map(|_| {
            let vs = distinct(&mut rng, probe_width);
            vs.iter()
                .map(|&v| Lit::with_phase(Var::new(v), rng.gen_bool(0.5)))
                .collect()
        })
        .collect();
    Workload {
        label: "rand3",
        cnf,
        probes,
    }
}

/// A width-7 implication chain `(¬x_i ∨ ¬g_0 ∨ … ∨ ¬g_4 ∨ x_{i+1})`: with
/// all five guards assumed, every propagation scans past five falsified
/// literals looking for a replacement watch — the literal-scan loop where
/// contiguous clause memory matters most.
fn wide7(links: usize, probes: usize) -> Workload {
    let guards: Vec<Var> = (links..links + 5).map(Var::new).collect();
    let mut cnf = Cnf::new(links + 5);
    for i in 0..links - 1 {
        let mut c = vec![Lit::neg(Var::new(i))];
        c.extend(guards.iter().map(|&g| Lit::neg(g)));
        c.push(Lit::pos(Var::new(i + 1)));
        cnf.add_clause(c);
    }
    let probes = (0..probes)
        .map(|k| {
            let start = (k * 131) % (links / 2);
            let mut p: Vec<Lit> = guards.iter().map(|&g| Lit::pos(g)).collect();
            p.push(Lit::pos(Var::new(start)));
            p
        })
        .collect();
    Workload {
        label: "wide7",
        cnf,
        probes,
    }
}

/// The deep-incremental-session workload: a shuffled ternary chain
/// (content) interleaved with activation-tagged junk clause groups that
/// are all retired before probing — the shape of a backward fixed point
/// after many iterations. The solver garbage-collects the retired groups
/// into a dense arena; the pre-arena store (faithfully) keeps every
/// tombstoned buffer, so its surviving clauses stay scattered across a
/// many-times-larger heap.
///
/// Every other chain clause also gets a strictly redundant width-4
/// superset (the three chain literals plus one junk-pool literal). The
/// supersets never propagate anything new, so both engines do identical
/// probe work — but they are exactly what root-level inprocessing exists
/// to remove, which the `churn_inprocess` row measures.
struct ChurnSetup {
    flat: Solver,
    vecvec: VecVecBcp,
    probes: Vec<Vec<Lit>>,
    /// Probe results are compared on these variables only (the retired
    /// groups' activation units exist only on the solver side).
    content_vars: usize,
}

fn churn(links: usize, junk_per_content: usize, groups: usize, probes: usize, seed: u64) -> ChurnSetup {
    let guard = Var::new(links);
    let content_vars = links + 1;
    let junk_pool = 4000;
    let act_start = content_vars + junk_pool;
    let mut rng = SplitMix64::seed_from_u64(seed);

    // Content clauses in shuffled allocation order: in a live session,
    // allocation order (groups and learnts arriving over time) does not
    // match propagation order, so a layout must not rely on it.
    let mut content: Vec<Vec<Lit>> = (0..links - 1)
        .map(|i| {
            vec![
                Lit::neg(Var::new(i)),
                Lit::neg(guard),
                Lit::pos(Var::new(i + 1)),
            ]
        })
        .collect();
    rng.shuffle(&mut content);

    let n_junk = (links - 1) * junk_per_content;
    let mut cnf = Cnf::new(act_start + groups);
    let mut junk_indices = Vec::with_capacity(n_junk);
    let mut j = 0usize;
    for (ci, c) in content.into_iter().enumerate() {
        if ci % 2 == 0 {
            let extra = Lit::with_phase(
                Var::new(content_vars + rng.gen_range(0..junk_pool)),
                rng.gen_bool(0.5),
            );
            let mut superset = c.clone();
            superset.push(extra);
            cnf.add_clause(superset);
        }
        cnf.add_clause(c);
        for _ in 0..junk_per_content {
            // Groups are contiguous in junk order — retired oldest-first,
            // like session iterations.
            let act = Var::new(act_start + j * groups / n_junk);
            let mut lits = vec![Lit::neg(act)];
            while lits.len() < 4 {
                let v = Var::new(content_vars + rng.gen_range(0..junk_pool));
                let l = Lit::with_phase(v, rng.gen_bool(0.5));
                if !lits.contains(&l) && !lits.contains(&!l) {
                    lits.push(l);
                }
            }
            junk_indices.push(cnf.clauses().len());
            cnf.add_clause(lits);
            j += 1;
        }
    }

    let mut flat = Solver::from_cnf(&cnf);
    for g in 0..groups {
        flat.retire_group(Lit::pos(Var::new(act_start + g)));
    }
    let mut vecvec = VecVecBcp::from_cnf(&cnf);
    for &ci in &junk_indices {
        vecvec.tombstone(ci);
    }

    let probes = (0..probes)
        .map(|k| {
            let start = (k * 977) % (links / 2);
            vec![Lit::pos(guard), Lit::pos(Var::new(start))]
        })
        .collect();
    ChurnSetup {
        flat,
        vecvec,
        probes,
        content_vars,
    }
}

/// Probe-outcome agreement on the first `content_vars` variables: same
/// conflict verdict, same implied value per variable.
fn assert_agree(label: &str, content_vars: usize, a: &Option<Assignment>, b: &Option<Assignment>) {
    match (a, b) {
        (None, None) => {}
        (Some(a), Some(b)) => {
            for i in 0..content_vars {
                let v = Var::new(i);
                assert_eq!(
                    a.value(v),
                    b.value(v),
                    "{label}: engines imply different values for x{i}"
                );
            }
        }
        _ => panic!("{label}: engines disagree on probe outcome"),
    }
}

/// Gates on identical probe results and propagation counts, then times
/// both engines' full probe sweeps and emits one JSON object. With
/// `time_clones`, also times a worker clone of each engine (the solver's
/// `clone_at_root` flat-buffer copy vs. one heap allocation per clause).
#[allow(clippy::too_many_arguments)]
fn bench_pair(
    out: &mut JsonObject,
    samples: usize,
    label: &str,
    flat: &mut Solver,
    vecvec: &mut VecVecBcp,
    probes: &[Vec<Lit>],
    content_vars: usize,
    time_clones: bool,
) {
    // Correctness + equal-work gate before any timing (doubles as the
    // cache warm-up: first visits migrate watches identically in both).
    let flat_props0 = flat.stats().propagations;
    for probe in probes {
        let a = flat.propagate_under(probe);
        let b = vecvec.propagate_under(probe);
        assert_agree(label, content_vars, &a, &b);
    }
    let flat_props = flat.stats().propagations - flat_props0;
    assert_eq!(
        flat_props, vecvec.propagations,
        "{label}: engines count different propagation work"
    );

    let flat_m = measure(samples, || {
        for probe in probes {
            flat.propagate_under(probe);
        }
    });
    let vecvec_m = measure(samples, || {
        for probe in probes {
            vecvec.propagate_under(probe);
        }
    });
    let flat_ns = flat_m.median.as_nanos() as u64;
    let vecvec_ns = vecvec_m.median.as_nanos() as u64;
    let props_per_sec = |ns: u64| {
        if ns == 0 {
            0.0
        } else {
            flat_props as f64 * 1e9 / ns as f64
        }
    };
    let speedup = if flat_ns == 0 {
        0.0
    } else {
        vecvec_ns as f64 / flat_ns as f64
    };
    let flat_bytes = flat.arena_bytes() as u64;
    let vecvec_bytes = vecvec.clause_store_bytes();
    println!(
        "{:<8} flat {:>10}  vecvec {:>10}  speedup {:.3}x  {} props/sweep  arena {} B vs {} B",
        label,
        fmt_duration(flat_m.median),
        fmt_duration(vecvec_m.median),
        speedup,
        flat_props,
        flat_bytes,
        vecvec_bytes,
    );
    out.begin_object(label);
    out.field_u64("probes", probes.len() as u64);
    out.field_u64("props_per_sweep", flat_props);
    out.field_u64("flat_sweep_ns", flat_ns);
    out.field_u64("vecvec_sweep_ns", vecvec_ns);
    out.field_f64("flat_props_per_sec", props_per_sec(flat_ns).round());
    out.field_f64("vecvec_props_per_sec", props_per_sec(vecvec_ns).round());
    out.field_f64("speedup_ratio", (speedup * 1000.0).round() / 1000.0);
    out.field_u64("flat_arena_bytes", flat_bytes);
    out.field_u64("vecvec_clause_bytes", vecvec_bytes);
    if time_clones {
        let flat_clone = measure(samples, || flat.clone_at_root());
        let vecvec_clone = measure(samples, || vecvec.clone());
        let fc = flat_clone.median.as_nanos() as u64;
        let vc = vecvec_clone.median.as_nanos() as u64;
        let ratio = if fc == 0 { 0.0 } else { vc as f64 / fc as f64 };
        println!(
            "{:<8} clone: flat {:>10}  vecvec {:>10}  speedup {:.3}x",
            label,
            fmt_duration(flat_clone.median),
            fmt_duration(vecvec_clone.median),
            ratio,
        );
        out.field_u64("flat_clone_ns", fc);
        out.field_u64("vecvec_clone_ns", vc);
        out.field_f64("clone_speedup_ratio", (ratio * 1000.0).round() / 1000.0);
    }
    out.end_object();
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());
    let samples = samples();
    // Sized so the Vec-of-Vec clause store overflows a 2 MiB L2 cache
    // while the arena stays inside it — the regime the arena is for.
    let workloads = [
        chain3(50_000, 24),
        rand3(30_000, 100_000, 768, 20, 0xA11_501),
        wide7(16_000, 24),
    ];

    let mut out = JsonObject::new();
    out.field_u64("samples", samples as u64);
    for w in &workloads {
        let mut flat = Solver::from_cnf(&w.cnf);
        let mut vecvec = VecVecBcp::from_cnf(&w.cnf);
        let content_vars = w.cnf.num_vars();
        bench_pair(
            &mut out,
            samples,
            w.label,
            &mut flat,
            &mut vecvec,
            &w.probes,
            content_vars,
            false,
        );
    }
    let mut c = churn(60_000, 3, 40, 12, 0x05EE_D60C);
    bench_pair(
        &mut out,
        samples,
        "churn",
        &mut c.flat,
        &mut c.vecvec,
        &c.probes,
        c.content_vars,
        true,
    );

    // Inprocessing row: the identical churn workload (same seed), but the
    // solver runs one root-level inprocessing pass at the session boundary
    // before probing. Subsumption deletes the redundant supersets and GC
    // compacts them away; the Vec-of-Vec replica keeps them, exactly as
    // the pre-inprocessing solver did. Probe outcomes and propagation
    // counts still match — the supersets never implied anything.
    let mut ci = churn(60_000, 3, 40, 12, 0x05EE_D60C);
    // The default per-round budget is sized for mid-session pauses; this
    // row measures one full boundary pass over a 90k-clause arena, so give
    // subsumption room to reach its fixed point.
    let mut cfg = *ci.flat.config();
    cfg.inprocess_subsumption_checks = 20_000_000;
    ci.flat.set_config(cfg);
    let words_before = (ci.flat.arena_bytes() / 4) as u64;
    let t0 = std::time::Instant::now();
    ci.flat.inprocess();
    let inprocess_ns = t0.elapsed().as_nanos() as u64;
    let words_after = (ci.flat.arena_bytes() / 4) as u64;
    let st = *ci.flat.stats();
    println!(
        "inprocess: {} -> {} live clause words ({} subsumed, {} lits strengthened, {} vivified) in {}",
        words_before,
        words_after,
        st.subsumed_clauses,
        st.strengthened_lits,
        st.vivified_clauses,
        fmt_duration(std::time::Duration::from_nanos(inprocess_ns)),
    );
    assert!(
        words_after < words_before,
        "inprocessing must shrink the churn arena ({words_before} -> {words_after} words)"
    );
    out.begin_object("inprocess");
    out.field_u64("live_clause_words_before", words_before);
    out.field_u64("live_clause_words_after", words_after);
    out.field_u64("inprocess_ns", inprocess_ns);
    out.field_u64("inprocess_rounds", st.inprocess_rounds);
    out.field_u64("subsumed_clauses", st.subsumed_clauses);
    out.field_u64("strengthened_lits", st.strengthened_lits);
    out.field_u64("vivified_clauses", st.vivified_clauses);
    out.end_object();
    bench_pair(
        &mut out,
        samples,
        "churn_inprocess",
        &mut ci.flat,
        &mut ci.vecvec,
        &ci.probes,
        ci.content_vars,
        false,
    );
    let json = out.finish();
    std::fs::write(&out_path, format!("{json}\n")).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
