//! Cube-store scaling sweep (table R12 of `EXPERIMENTS.md`): the
//! occurrence-indexed [`CubeSet`] vs the retained naive two-scan store
//! ([`NaiveCubeSet`]) on identical seeded insert streams, written as
//! `BENCH_PR10.json`. Run via `scripts/bench.sh` or directly:
//!
//! ```text
//! cargo run --release -p presat-bench --bin cubeset_scaling [out.json]
//! ```
//!
//! Two regimes:
//!
//! * `sparse` — wide cubes over 64 variables (width 3–10), so almost every
//!   insert survives and the store grows linearly with the stream. This is
//!   the regime where the naive insert's two full scans go quadratic and
//!   the watch/occurrence index pays off; the sweep over stream lengths
//!   shows the gap widening (the PR gate is ≥5× at 10 000 inserts).
//! * `dense` — narrow cubes over 12 variables (width 1–3), where constant
//!   absorption keeps both stores small. The index cannot win much here
//!   (there is nothing to skip); the record documents that it does not
//!   *lose* either.
//!
//! Before timing anything, every stream is run through both stores once
//! and the resulting cube sequences asserted identical — the bit-identity
//! contract `tests/cubeset_index.rs` pins is re-checked on the exact
//! streams being timed. Each record carries the index's work counters
//! (`subsumption_checks`, `sig_rejects`, `index_candidates`) next to the
//! naive store's pair-scan bound, so the speedup can be read off the work
//! actually avoided, not just wall clock.

use presat_bench::harness::fmt_duration;
use presat_logic::rng::SplitMix64;
use presat_logic::{Cube, CubeSet, Lit, NaiveCubeSet, Var};
use presat_obs::json::{self, JsonObject};

const SIZES: [usize; 4] = [1_000, 2_500, 5_000, 10_000];

fn samples() -> usize {
    std::env::var("PRESAT_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// A reproducible insert stream: `inserts` random cubes of width
/// `min_width..=max_width` over `num_vars` variables. Contradictory draws
/// are retried, so the stream depends only on the seed and parameters.
fn stream(
    seed: u64,
    inserts: usize,
    num_vars: usize,
    min_width: usize,
    max_width: usize,
) -> Vec<Cube> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut out = Vec::with_capacity(inserts);
    while out.len() < inserts {
        let width = rng.gen_range(min_width..max_width + 1);
        let lits: Vec<Lit> = (0..width)
            .map(|_| Lit::with_phase(Var::new(rng.gen_range(0..num_vars)), rng.gen_bool(0.5)))
            .collect();
        if let Ok(c) = Cube::from_lits(lits) {
            out.push(c);
        }
    }
    out
}

fn build_naive(cubes: &[Cube]) -> NaiveCubeSet {
    let mut s = NaiveCubeSet::new();
    for c in cubes {
        s.insert(c.clone());
    }
    s
}

fn build_indexed(cubes: &[Cube]) -> CubeSet {
    let mut s = CubeSet::new();
    for c in cubes {
        s.insert(c.clone());
    }
    s
}

/// Times one stream through both stores (interleaved round-robin, round 0
/// as warm-up) and appends a `{label: {...}}` record with medians, the
/// speedup, and the index's work counters. Returns the speedup.
fn case(out: &mut JsonObject, label: &str, cubes: &[Cube], samples: usize) -> f64 {
    // Bit-identity gate on the exact stream about to be timed.
    let naive = build_naive(cubes);
    let indexed = build_indexed(cubes);
    assert_eq!(
        naive.cubes(),
        indexed.cubes(),
        "{label}: indexed store diverged from the naive reference"
    );
    let final_cubes = indexed.len() as u64;
    let stats = indexed.index_stats();

    let mut times: [Vec<u64>; 2] = [Vec::with_capacity(samples), Vec::with_capacity(samples)];
    for round in 0..=samples {
        for (slot, bucket) in times.iter_mut().enumerate() {
            let t0 = std::time::Instant::now();
            if slot == 0 {
                std::hint::black_box(build_naive(cubes).len());
            } else {
                std::hint::black_box(build_indexed(cubes).len());
            }
            let ns = t0.elapsed().as_nanos() as u64;
            if round > 0 {
                bucket.push(ns);
            }
        }
    }
    let mut medians = [0u64; 2];
    for (slot, name) in ["naive", "indexed"].into_iter().enumerate() {
        times[slot].sort_unstable();
        medians[slot] = times[slot][times[slot].len() / 2];
        println!(
            "{:<16} {:<8} median {:>10}  (min {}, max {})",
            label,
            name,
            fmt_duration(std::time::Duration::from_nanos(medians[slot])),
            fmt_duration(std::time::Duration::from_nanos(times[slot][0])),
            fmt_duration(std::time::Duration::from_nanos(
                times[slot][times[slot].len() - 1]
            )),
        );
    }
    let speedup = if medians[1] == 0 {
        0.0
    } else {
        medians[0] as f64 / medians[1] as f64
    };

    out.begin_object(label);
    out.field_u64("inserts", cubes.len() as u64)
        .field_u64("final_cubes", final_cubes)
        .field_u64("naive_ns", medians[0])
        .field_u64("indexed_ns", medians[1])
        .field_f64("speedup", round3(speedup))
        .field_u64("subsumption_checks", stats.subsumption_checks)
        .field_u64("sig_rejects", stats.sig_rejects)
        .field_u64("index_candidates", stats.index_candidates);
    out.end_object();
    speedup
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());
    let samples = samples();
    println!("# cube-store scaling sweep ({samples} samples per case)");

    let mut o = JsonObject::new();
    o.field_str("bench", "cubeset_scaling")
        .field_u64("samples", samples as u64);

    o.begin_object("sparse");
    let mut speedup_at_max = 0.0;
    for &n in &SIZES {
        let cubes = stream(0x5105_u64 + n as u64, n, 64, 3, 10);
        let speedup = case(&mut o, &format!("sparse_{n}"), &cubes, samples);
        if n == *SIZES.last().expect("sizes nonempty") {
            speedup_at_max = speedup;
        }
    }
    o.end_object();

    o.begin_object("dense");
    let dense = stream(0xDE45, 10_000, 12, 1, 3);
    case(&mut o, "dense_10000", &dense, samples);
    o.end_object();

    o.field_f64("speedup_at_10000", round3(speedup_at_max));

    let text = o.finish();
    json::validate(&text).expect("emitted JSON must be well-formed");
    std::fs::write(&out_path, format!("{text}\n")).expect("cannot write output file");
    println!("wrote {out_path}");
    println!("sparse 10k speedup: {speedup_at_max:.1}x (PR gate: >= 5x)");
}
