//! Budget-polling overhead probe (table R7 of `EXPERIMENTS.md`): wall-clock
//! of the success-driven preimage workloads with no limits installed vs. a
//! *generous, never-tripping* budget (conflict cap, far deadline, and a
//! live cancel token). The gap between the two is the whole price of the
//! anytime machinery — the per-conflict budget checks and the atomic
//! cancellation poll in the CDCL loop. Written as `BENCH_PR4.json`:
//!
//! ```text
//! cargo run --release -p presat-bench --bin budget_overhead [out.json]
//! ```
//!
//! Every case first asserts that the budgeted run returns exactly the
//! unbudgeted result (same cubes, flagged complete): a never-tripping
//! limit must be behaviourally invisible, so the numbers compare equal
//! work.

use std::time::Duration;

use presat_allsat::{Budget, CancelToken, EnumLimits};
use presat_bench::harness::{fmt_duration, measure};
use presat_bench::workloads::suite;
use presat_obs::json::JsonObject;
use presat_preimage::{PreimageEngine, SatPreimage};

fn samples() -> usize {
    std::env::var("PRESAT_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR4.json".to_string());
    let samples = samples();
    let engine = SatPreimage::success_driven();
    // Never trips: ~half of u64 conflicts, a deadline hours away, and a
    // token nobody cancels — but every poll site stays live.
    let token = CancelToken::new();
    let limits = EnumLimits::none()
        .with_budget(
            Budget::unlimited()
                .with_conflicts(u64::MAX / 2)
                .with_timeout(Duration::from_secs(3600)),
        )
        .with_cancel(token);

    let mut out = JsonObject::new();
    out.field_u64("samples", samples as u64);
    for w in suite() {
        let plain = engine.preimage(&w.circuit, &w.target);
        let budgeted = engine.preimage_limited(
            &w.circuit,
            &w.target,
            &limits,
            &mut presat_obs::NullSink,
        );
        assert!(
            budgeted.complete && budgeted.stop_reason.is_none(),
            "{}: generous budget tripped",
            w.label
        );
        assert_eq!(
            budgeted.states.cubes(),
            plain.states.cubes(),
            "{}: budgeted run diverges from the unlimited one",
            w.label
        );

        let base = measure(samples, || engine.preimage(&w.circuit, &w.target));
        let polled = measure(samples, || {
            engine.preimage_limited(&w.circuit, &w.target, &limits, &mut presat_obs::NullSink)
        });
        let base_ns = base.median.as_nanos() as u64;
        let polled_ns = polled.median.as_nanos() as u64;
        let overhead = if base_ns == 0 {
            0.0
        } else {
            polled_ns as f64 / base_ns as f64
        };
        println!(
            "{:<10} unlimited {:>10}  budgeted {:>10}  ratio {:.3}",
            w.label,
            fmt_duration(base.median),
            fmt_duration(polled.median),
            overhead
        );
        out.begin_object(&w.label);
        out.field_u64("unlimited_ns", base_ns);
        out.field_u64("budgeted_ns", polled_ns);
        out.field_f64("overhead_ratio", (overhead * 1000.0).round() / 1000.0);
        out.end_object();
    }
    let json = out.finish();
    std::fs::write(&out_path, format!("{json}\n")).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
