//! Clause-DB flatness probe (table R9 of `EXPERIMENTS.md`): peak clause-DB
//! size as a function of solution count, blocking vs. chrono enumeration.
//! Written as `BENCH_PR6.json`:
//!
//! ```text
//! cargo run --release -p presat-bench --bin chrono_db_flatness [out.json]
//! ```
//!
//! Two formula families whose solution counts grow exponentially in `n`
//! while their encodings stay small:
//!
//! * `wide_or(n)` — a single clause `x0 ∨ … ∨ x_{n-1}`, all `n` variables
//!   important: `2^n − 1` solutions from one problem clause;
//! * `xor_chain(n)` — a Tseitin parity chain `y_i ↔ x_i ⊕ y_{i-1}` with the
//!   final parity forced on, only the `x` inputs important: `2^{n-1}`
//!   solutions from `4(n−1) + 1` clauses.
//!
//! The blocking engine asserts one blocking clause per emitted cube, so its
//! DB peak is `problem + solutions − 1` — linear in the solution count. The
//! chrono engine flips decisions in place and never adds a clause, so its
//! peak equals the problem clause count exactly, independent of how many
//! solutions it enumerates. Both claims are asserted, not just measured,
//! and both engines' expanded model sets are cross-checked before any
//! number is recorded.

use presat_allsat::{AllSatEngine, AllSatProblem, BlockingAllSat, ChronoAllSat};
use presat_logic::{Cnf, Lit, Var};
use presat_obs::json::JsonObject;

fn lit(v: usize, pos: bool) -> Lit {
    Lit::with_phase(Var::new(v), pos)
}

/// `x0 ∨ … ∨ x_{n-1}`: one clause, `2^n − 1` solutions.
fn wide_or(n: usize) -> AllSatProblem {
    let mut cnf = Cnf::new(n);
    cnf.add_clause((0..n).map(|v| lit(v, true)).collect::<Vec<_>>());
    AllSatProblem::new(cnf, Var::range(n).collect())
}

/// Tseitin parity chain over inputs `x0..x_{n-1}` with aux `y1..y_{n-1}`
/// (`y_i ↔ x_i ⊕ y_{i-1}`, seeded with `y_0 = x_0`) and the final parity
/// forced true: `2^{n-1}` solutions projected onto the inputs.
fn xor_chain(n: usize) -> AllSatProblem {
    assert!(n >= 2);
    let mut cnf = Cnf::new(2 * n - 1);
    // x_i is var i; y_i (i >= 1) is var n + i - 1; y_0 aliases x_0.
    let y = |i: usize| if i == 0 { i } else { n + i - 1 };
    for i in 1..n {
        let (a, b, c) = (lit(i, true), lit(y(i - 1), true), lit(y(i), true));
        // c ↔ a ⊕ b as four clauses.
        cnf.add_clause(vec![!a, !b, !c]);
        cnf.add_clause(vec![a, b, !c]);
        cnf.add_clause(vec![!a, b, c]);
        cnf.add_clause(vec![a, !b, c]);
    }
    cnf.add_clause(vec![lit(y(n - 1), true)]);
    AllSatProblem::new(cnf, Var::range(n).collect())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR6.json".to_string());
    let mut out = JsonObject::new();
    println!(
        "{:<14} {:>10} {:>8} {:>14} {:>12} {:>12}",
        "case", "solutions", "clauses", "blocking_peak", "chrono_peak", "backtracks"
    );
    let cases: Vec<(String, AllSatProblem, usize)> = [4usize, 6, 8, 10]
        .iter()
        .flat_map(|&n| {
            [
                (format!("wide_or_{n}"), wide_or(n), n),
                (format!("xor_chain_{n}"), xor_chain(n), n),
            ]
        })
        .collect();
    for (label, problem, k) in cases {
        let blocking = BlockingAllSat::new().enumerate(&problem);
        let chrono = ChronoAllSat::new().enumerate(&problem);
        assert!(blocking.complete && chrono.complete, "{label}: incomplete");
        let solutions = chrono.minterm_count(k);
        assert_eq!(
            blocking.minterm_count(k),
            solutions,
            "{label}: engines disagree on the solution count"
        );

        // The structural claims behind the headline: blocking's DB carries
        // one clause per emitted cube on top of the encoding; chrono's
        // never grows past the encoding and learns nothing.
        let problem_clauses = chrono.stats.sat.problem_clauses;
        let blocking_peak = blocking.stats.db_clauses_peak;
        let chrono_peak = chrono.stats.db_clauses_peak;
        assert_eq!(
            chrono_peak, problem_clauses,
            "{label}: chrono clause DB grew during enumeration"
        );
        assert_eq!(chrono.stats.sat.learnt_clauses, 0, "{label}");
        assert_eq!(chrono.stats.blocking_clauses, 0, "{label}");
        assert!(
            blocking_peak >= problem_clauses + blocking.stats.blocking_clauses - 1,
            "{label}: blocking peak below its own blocking-clause count"
        );

        println!(
            "{label:<14} {solutions:>10} {problem_clauses:>8} {blocking_peak:>14} {chrono_peak:>12} {:>12}",
            chrono.stats.chrono_backtracks
        );
        out.begin_object(&label);
        out.field_u64("solutions", solutions as u64);
        out.field_u64("problem_clauses", problem_clauses);
        out.field_u64("blocking_cubes", blocking.stats.cubes_emitted);
        out.field_u64("blocking_db_peak", blocking_peak);
        out.field_u64("chrono_db_peak", chrono_peak);
        out.field_u64("chrono_backtracks", chrono.stats.chrono_backtracks);
        out.end_object();
    }
    let json = out.finish();
    std::fs::write(&out_path, format!("{json}\n")).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
