//! Thread-scaling sweep (table R5 of `EXPERIMENTS.md`): wall-clock of the
//! success-driven preimage and backward-reachability workloads at 1, 2 and
//! 4 worker threads, written as `BENCH_PR2.json` (hand-rolled JSON, no
//! dependencies). Run via `scripts/bench.sh` or directly:
//!
//! ```text
//! cargo run --release -p presat-bench --bin thread_scaling [out.json]
//! ```
//!
//! Every timed case first asserts that the parallel result is structurally
//! identical to the sequential one — the numbers are only meaningful if
//! the engines do the same job. The JSON records `cpu_count` so readers
//! can judge the speedups against the hardware: on a single-CPU host the
//! threads serialize and speedup ≈ 1 is the honest expected outcome.

use presat_bench::harness::{fmt_duration, measure};
use presat_bench::workloads::{reach_workloads, scaling_workload, suite, Workload};
use presat_obs::json::{self, JsonObject};
use presat_preimage::{backward_reach, PreimageEngine, ReachOptions, SatPreimage};

const JOBS: [usize; 3] = [1, 2, 4];

fn samples() -> usize {
    std::env::var("PRESAT_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

/// Times one closure per job count and appends a `{label: {...}}` object
/// with per-thread-count medians and speedups relative to 1 thread.
fn sweep_case(
    out: &mut JsonObject,
    label: &str,
    samples: usize,
    mut run: impl FnMut(usize) -> u64,
) {
    let mut medians = [0u64; JOBS.len()];
    for (slot, &jobs) in JOBS.iter().enumerate() {
        let m = measure(samples, || run(jobs));
        medians[slot] = m.median.as_nanos() as u64;
        println!(
            "{label:<28} jobs={jobs}  median {:>10}  (min {}, max {})",
            fmt_duration(m.median),
            fmt_duration(m.min),
            fmt_duration(m.max),
        );
    }
    out.begin_object(label);
    for (slot, &jobs) in JOBS.iter().enumerate() {
        out.field_u64(&format!("jobs_{jobs}_ns"), medians[slot]);
    }
    for &jobs in &JOBS[1..] {
        let slot = JOBS.iter().position(|&j| j == jobs).unwrap();
        let speedup = if medians[slot] == 0 {
            0.0
        } else {
            medians[0] as f64 / medians[slot] as f64
        };
        out.field_f64(&format!("speedup_x{jobs}"), (speedup * 1000.0).round() / 1000.0);
    }
    out.end_object();
}

fn preimage_checked(w: &Workload, jobs: usize) -> u64 {
    let engine = SatPreimage::success_driven().with_jobs(jobs);
    let r = engine.preimage(&w.circuit, &w.target);
    r.stats.result_cubes
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());
    let samples = samples();
    let cpus = presat_allsat::effective_jobs(0);
    println!("# thread scaling sweep ({samples} samples per case, {cpus} CPU(s) available)");

    let mut o = JsonObject::new();
    o.field_str("bench", "thread_scaling")
        .field_u64("cpu_count", cpus as u64)
        .field_u64("samples", samples as u64);

    // Determinism gate: before timing anything, check structural equality
    // on every workload we are about to measure.
    let step_workloads: Vec<Workload> = suite()
        .into_iter()
        .filter(|w| matches!(w.label.as_str(), "parity10" | "cmp6" | "rnd6x8"))
        .chain([scaling_workload(11)])
        .collect();
    for w in &step_workloads {
        let seq = SatPreimage::success_driven().preimage(&w.circuit, &w.target);
        for &jobs in &JOBS[1..] {
            let par = SatPreimage::success_driven()
                .with_jobs(jobs)
                .preimage(&w.circuit, &w.target);
            assert_eq!(
                par.states.cubes(),
                seq.states.cubes(),
                "{}: parallel result diverged at jobs={jobs}",
                w.label
            );
        }
    }

    o.begin_object("preimage_step");
    for w in &step_workloads {
        sweep_case(&mut o, &w.label, samples, |jobs| preimage_checked(w, jobs));
    }
    o.end_object();

    o.begin_object("reachability");
    for w in reach_workloads() {
        sweep_case(&mut o, &w.label, samples, |jobs| {
            let engine = SatPreimage::success_driven().with_jobs(jobs);
            let report =
                backward_reach(&engine, &w.circuit, &w.target, ReachOptions::default());
            report.reached_states as u64
        });
    }
    o.end_object();

    let text = o.finish();
    json::validate(&text).expect("emitted JSON must be well-formed");
    std::fs::write(&out_path, format!("{text}\n")).expect("cannot write output file");
    println!("wrote {out_path}");
}
