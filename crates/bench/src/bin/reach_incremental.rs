//! Incremental-session sweep (table R6 of `EXPERIMENTS.md`): wall-clock of
//! the backward-reachability fixed point with the per-iteration rebuild
//! path versus one persistent [`PreimageSession`], written as
//! `BENCH_PR3.json` (hand-rolled JSON, no dependencies). Run via
//! `scripts/bench.sh` or directly:
//!
//! ```text
//! cargo run --release -p presat-bench --bin reach_incremental [out.json]
//! ```
//!
//! Every timed case first asserts that the two paths produce structurally
//! identical reports (same reached cube set, same iteration rows) at both
//! 1 and 4 worker threads — the speedup is only meaningful if the work is
//! the same. Besides timings the JSON records the session-reuse counters
//! (`encodings_reused`, `learnts_carried`, `activation_lits`) and the
//! fixed-point depth, so the table can show *why* the session path wins:
//! the transition relation is encoded once instead of once per iteration
//! and learnt clauses survive across iterations.
//!
//! [`PreimageSession`]: presat_preimage::PreimageSession

#![forbid(unsafe_code)]

use presat_bench::harness::{fmt_duration, measure};
use presat_bench::workloads::{reach_workloads, Workload};
use presat_obs::json::{self, JsonObject};
use presat_preimage::{backward_reach, ReachOptions, ReachReport, SatPreimage, StateSet};

fn samples() -> usize {
    std::env::var("PRESAT_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5)
}

fn run(w: &Workload, jobs: usize, incremental: bool) -> ReachReport {
    backward_reach(
        &SatPreimage::success_driven().with_jobs(jobs),
        &w.circuit,
        &w.target,
        ReachOptions {
            incremental,
            ..ReachOptions::default()
        },
    )
}

fn assert_identical(label: &str, a: &ReachReport, b: &ReachReport) {
    assert_eq!(a.converged, b.converged, "{label}: convergence diverged");
    assert_eq!(
        a.reached.cubes(),
        b.reached.cubes(),
        "{label}: reached cube set diverged"
    );
    assert_eq!(
        a.iterations.len(),
        b.iterations.len(),
        "{label}: iteration count diverged"
    );
    for (x, y) in a.iterations.iter().zip(&b.iterations) {
        assert_eq!(
            (x.frontier_cubes, x.new_states, x.reached_states),
            (y.frontier_cubes, y.new_states, y.reached_states),
            "{label}: iteration row {} diverged",
            x.iteration
        );
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_PR3.json".to_string());
    let samples = samples();
    let cpus = presat_allsat::effective_jobs(0);
    println!(
        "# incremental reachability sweep ({samples} samples per case, {cpus} CPU(s) available)"
    );

    // The F3 reachability family plus one deep fixed point: a 7-bit counter
    // reaching 0 runs 2^7 - 1 preimage iterations, the regime where
    // per-iteration re-encoding dominates the rebuild path.
    let mut workloads = reach_workloads();
    workloads.push(Workload {
        label: "cnt7".into(),
        circuit: presat_circuit::generators::counter(7, false),
        target: StateSet::from_state_bits(0, 7),
    });

    // Determinism gate: the session path must be bit-identical to the
    // rebuild path on every workload, sequential and parallel, before any
    // timing is trusted.
    for w in &workloads {
        for jobs in [1usize, 4] {
            let rebuild = run(w, jobs, false);
            let session = run(w, jobs, true);
            assert_identical(&format!("{} jobs={jobs}", w.label), &rebuild, &session);
        }
    }

    let mut o = JsonObject::new();
    o.field_str("bench", "reach_incremental")
        .field_u64("cpu_count", cpus as u64)
        .field_u64("samples", samples as u64);

    o.begin_object("reachability");
    for w in &workloads {
        let rebuild = measure(samples, || run(w, 1, false).reached_states as u64);
        let session = measure(samples, || run(w, 1, true).reached_states as u64);
        let speedup = if session.median.as_nanos() == 0 {
            0.0
        } else {
            rebuild.median.as_nanos() as f64 / session.median.as_nanos() as f64
        };
        // One extra run to snapshot the session-reuse counters (they are
        // deterministic per workload, so any run is representative).
        let report = run(w, 1, true);
        println!(
            "{:<10} rebuild {:>10}  incremental {:>10}  speedup {:.3}x  \
             (iters {}, reused {}, learnts {})",
            w.label,
            fmt_duration(rebuild.median),
            fmt_duration(session.median),
            speedup,
            report.stats.iterations,
            report.stats.encodings_reused,
            report.stats.learnts_carried,
        );
        o.begin_object(&w.label);
        o.field_u64("rebuild_ns", rebuild.median.as_nanos() as u64)
            .field_u64("incremental_ns", session.median.as_nanos() as u64)
            .field_f64("speedup", (speedup * 1000.0).round() / 1000.0)
            .field_u64("iterations", report.stats.iterations)
            .field_u64("encodings_reused", report.stats.encodings_reused)
            .field_u64("learnts_carried", report.stats.learnts_carried)
            .field_u64("activation_lits", report.stats.activation_lits)
            .field_u64("solver_calls", report.stats.solver_calls)
            .field_u64("reached_states", report.reached_states as u64);
        o.end_object();
    }
    o.end_object();

    let text = o.finish();
    json::validate(&text).expect("emitted JSON must be well-formed");
    std::fs::write(&out_path, format!("{text}\n")).expect("cannot write output file");
    println!("wrote {out_path}");
}
