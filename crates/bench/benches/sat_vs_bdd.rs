//! Table R4 bench: SAT vs BDD preimage on the comparator family (the BDD
//! engine's block variable order makes the comparator transition function
//! exponential; the SAT engines stay polynomial).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use presat_bench::workloads::sat_vs_bdd_workload;
use presat_preimage::{BddPreimage, PreimageEngine, SatPreimage};

fn sat_vs_bdd(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_vs_bdd");
    group.sample_size(10);
    for n in [4usize, 6, 8, 10] {
        let w = sat_vs_bdd_workload(n);
        group.bench_with_input(BenchmarkId::new("success-driven", n), &w, |b, w| {
            let e = SatPreimage::success_driven();
            b.iter(|| e.preimage(&w.circuit, &w.target))
        });
        group.bench_with_input(BenchmarkId::new("bdd-sub", n), &w, |b, w| {
            let e = BddPreimage::substitution();
            b.iter(|| e.preimage(&w.circuit, &w.target))
        });
        // The monolithic transition relation grows as 4^n on this family;
        // keep the bench sweep inside memory (see tables.rs, R4).
        if n <= 8 {
            group.bench_with_input(BenchmarkId::new("bdd-mono", n), &w, |b, w| {
                let e = BddPreimage::monolithic();
                b.iter(|| e.preimage(&w.circuit, &w.target))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, sat_vs_bdd);
criterion_main!(benches);
