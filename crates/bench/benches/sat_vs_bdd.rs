//! Table R4 bench: SAT vs BDD preimage on the comparator family (the BDD
//! engine's block variable order makes the comparator transition function
//! exponential; the SAT engines stay polynomial).

use presat_bench::harness::Bench;
use presat_bench::workloads::sat_vs_bdd_workload;
use presat_preimage::{BddPreimage, PreimageEngine, SatPreimage};

fn main() {
    let bench = Bench::new("sat_vs_bdd");
    for n in [4usize, 6, 8, 10] {
        let w = sat_vs_bdd_workload(n);
        let e = SatPreimage::success_driven();
        bench.case(&format!("success-driven/{n}"), || {
            e.preimage(&w.circuit, &w.target)
        });
        let e = BddPreimage::substitution();
        bench.case(&format!("bdd-sub/{n}"), || e.preimage(&w.circuit, &w.target));
        // The monolithic transition relation grows as 4^n on this family;
        // keep the bench sweep inside memory (see tables.rs, R4).
        if n <= 8 {
            let e = BddPreimage::monolithic();
            bench.case(&format!("bdd-mono/{n}"), || {
                e.preimage(&w.circuit, &w.target)
            });
        }
    }
}
