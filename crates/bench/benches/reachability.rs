//! Figure F3 bench: backward reachability to the fixed point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use presat_bench::workloads::reach_workloads;
use presat_preimage::{backward_reach, BddPreimage, ReachOptions, SatPreimage};

fn reachability(c: &mut Criterion) {
    let mut group = c.benchmark_group("backward_reach");
    group.sample_size(10);
    for w in reach_workloads() {
        group.bench_with_input(
            BenchmarkId::new("success-driven", &w.label),
            &w,
            |b, w| {
                let e = SatPreimage::success_driven();
                b.iter(|| backward_reach(&e, &w.circuit, &w.target, ReachOptions::default()))
            },
        );
        group.bench_with_input(BenchmarkId::new("bdd-sub", &w.label), &w, |b, w| {
            let e = BddPreimage::substitution();
            b.iter(|| backward_reach(&e, &w.circuit, &w.target, ReachOptions::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, reachability);
criterion_main!(benches);
