//! Figure F3 bench: backward reachability to the fixed point.

use presat_bench::harness::Bench;
use presat_bench::workloads::reach_workloads;
use presat_preimage::{backward_reach, BddPreimage, ReachOptions, SatPreimage};

fn main() {
    let bench = Bench::new("backward_reach");
    for w in reach_workloads() {
        let e = SatPreimage::success_driven();
        bench.case(&format!("success-driven/{}", w.label), || {
            backward_reach(&e, &w.circuit, &w.target, ReachOptions::default())
        });
        let e = BddPreimage::substitution();
        bench.case(&format!("bdd-sub/{}", w.label), || {
            backward_reach(&e, &w.circuit, &w.target, ReachOptions::default())
        });
    }
}
