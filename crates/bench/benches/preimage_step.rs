//! Table R2 bench: single-step preimage runtime, engine × circuit.

use presat_bench::harness::Bench;
use presat_bench::workloads::{scaling_workload, Workload};
use presat_circuit::{embedded, generators};
use presat_preimage::{PreimageEngine, SatPreimage, StateSet};

fn bench_workloads() -> Vec<Workload> {
    let mut v = vec![scaling_workload(6), scaling_workload(8)];
    v.push(Workload {
        label: "s27".into(),
        circuit: embedded::s27().expect("embedded"),
        target: StateSet::from_state_bits(0b110, 3),
    });
    v.push(Workload {
        label: "shift10".into(),
        circuit: generators::shift_register(10),
        target: StateSet::from_partial(&[(9, true)]),
    });
    v
}

fn main() {
    let bench = Bench::new("preimage_step");
    let engines: Vec<(&str, Box<dyn PreimageEngine>)> = vec![
        ("blocking", Box::new(SatPreimage::blocking())),
        ("min-blocking", Box::new(SatPreimage::min_blocking())),
        ("success-driven", Box::new(SatPreimage::success_driven())),
    ];
    for w in bench_workloads() {
        for (name, engine) in &engines {
            bench.case(&format!("{name}/{}", w.label), || {
                engine.preimage(&w.circuit, &w.target)
            });
        }
    }
}
