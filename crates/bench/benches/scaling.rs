//! Figures F1/F2 bench: runtime scaling with solution count on the parity
//! family (2^n solution minterms, linear solution graph).

use presat_bench::harness::Bench;
use presat_bench::workloads::scaling_workload;
use presat_preimage::{PreimageEngine, SatPreimage};

fn main() {
    let bench = Bench::new("scaling_parity");
    for n in [4usize, 6, 8, 10] {
        let w = scaling_workload(n);
        let e = SatPreimage::blocking();
        bench.case(&format!("blocking/{n}"), || e.preimage(&w.circuit, &w.target));
        let e = SatPreimage::min_blocking();
        bench.case(&format!("min-blocking/{n}"), || {
            e.preimage(&w.circuit, &w.target)
        });
        let e = SatPreimage::success_driven();
        bench.case(&format!("success-driven/{n}"), || {
            e.preimage(&w.circuit, &w.target)
        });
    }
}
