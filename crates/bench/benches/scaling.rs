//! Figures F1/F2 bench: runtime scaling with solution count on the parity
//! family (2^n solution minterms, linear solution graph).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use presat_bench::workloads::scaling_workload;
use presat_preimage::{PreimageEngine, SatPreimage};

fn scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_parity");
    group.sample_size(10);
    for n in [4usize, 6, 8, 10] {
        let w = scaling_workload(n);
        group.bench_with_input(BenchmarkId::new("blocking", n), &w, |b, w| {
            let e = SatPreimage::blocking();
            b.iter(|| e.preimage(&w.circuit, &w.target))
        });
        group.bench_with_input(BenchmarkId::new("min-blocking", n), &w, |b, w| {
            let e = SatPreimage::min_blocking();
            b.iter(|| e.preimage(&w.circuit, &w.target))
        });
        group.bench_with_input(BenchmarkId::new("success-driven", n), &w, |b, w| {
            let e = SatPreimage::success_driven();
            b.iter(|| e.preimage(&w.circuit, &w.target))
        });
    }
    group.finish();
}

criterion_group!(benches, scaling);
criterion_main!(benches);
