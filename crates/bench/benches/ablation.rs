//! Figure F4 bench: ablation of the success-driven mechanisms.

use presat_allsat::SignatureMode;
use presat_bench::harness::Bench;
use presat_bench::workloads::ablation_workloads;
use presat_preimage::{PreimageEngine, SatPreimage};

fn main() {
    let bench = Bench::new("ablation");
    let configs: Vec<(&str, SatPreimage)> = vec![
        ("full", SatPreimage::success_driven()),
        (
            "static-sig",
            SatPreimage::success_driven_with(SignatureMode::Static, true),
        ),
        (
            "no-reuse",
            SatPreimage::success_driven_with(SignatureMode::None, true),
        ),
        (
            "no-guidance",
            SatPreimage::success_driven_with(SignatureMode::Dynamic, false),
        ),
        (
            "bare",
            SatPreimage::success_driven_with(SignatureMode::None, false),
        ),
    ];
    for w in ablation_workloads() {
        for (name, engine) in &configs {
            bench.case(&format!("{name}/{}", w.label), || {
                engine.preimage(&w.circuit, &w.target)
            });
        }
    }
}
