//! Figure F4 bench: ablation of the success-driven mechanisms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use presat_allsat::SignatureMode;
use presat_bench::workloads::ablation_workloads;
use presat_preimage::{PreimageEngine, SatPreimage};

fn ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    let configs: Vec<(&str, SatPreimage)> = vec![
        ("full", SatPreimage::success_driven()),
        (
            "static-sig",
            SatPreimage::success_driven_with(SignatureMode::Static, true),
        ),
        (
            "no-reuse",
            SatPreimage::success_driven_with(SignatureMode::None, true),
        ),
        (
            "no-guidance",
            SatPreimage::success_driven_with(SignatureMode::Dynamic, false),
        ),
        (
            "bare",
            SatPreimage::success_driven_with(SignatureMode::None, false),
        ),
    ];
    for w in ablation_workloads() {
        for (name, engine) in &configs {
            group.bench_with_input(
                BenchmarkId::new(*name, &w.label),
                &w,
                |b, w| b.iter(|| engine.preimage(&w.circuit, &w.target)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, ablation);
criterion_main!(benches);
