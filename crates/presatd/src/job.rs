//! Resumable jobs: one accepted request turned into a sliceable state
//! machine.
//!
//! Every job exposes the same contract: [`Job::run_slice`] does at most one
//! budget quantum of work, streams any progress events (`cubes`,
//! `iteration`) through the connection's [`OutputHandle`], and either asks
//! to be re-queued ([`SliceOutcome::Continue`]) or emits its terminal
//! `done` event ([`SliceOutcome::Done`]). The scheduler interleaves slices
//! of many jobs round-robin, so a heavy tenant cannot starve a small one.
//!
//! # Why sliced results match the one-shot CLI bit-for-bit
//!
//! Each kind accumulates its verified solutions in a canonical
//! [`SolutionGraph`] (a hash-consed ROBDD over the projection positions).
//! The cube set extracted at the end depends only on the *set* represented
//! — never on how the work was sliced — and between slices the found
//! solutions are blocked inside the persistent solver, so no slice repeats
//! another's work. A budget-stopped slice therefore composes: the union of
//! slice results equals the sequential enumeration, cube for cube.

use std::time::{Duration, Instant};

use presat_allsat::{
    Budget, CancelToken, EnumLimits, IncrementalAllSat, SolutionGraph, SolutionNodeId, StopReason,
    SuccessDrivenAllSat,
};
use presat_circuit::Circuit;
use presat_logic::Var;
use presat_obs::{NullSink, PreimageCounters, Stats, Timer};
use presat_preimage::{
    PreimageEngine, PreimageSession, ReachDriver, ReachOptions, ReachStep, SatPreimage, StateSet,
};
use presat_sat::{BudgetPool, SolveResult, Solver};

use crate::output::OutputHandle;
use crate::protocol::{
    cubes_event, dimacs_cube, iteration_event, string_array, DoneEvent, Request, RequestLimits,
};

/// What a slice decided about the job's future.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SliceOutcome {
    /// More work remains — re-queue the job.
    Continue,
    /// The terminal `done` event was emitted; drop the job.
    Done,
}

/// The scheduler-facing summary of one slice.
#[derive(Clone, Copy, Debug)]
pub struct SliceReport {
    /// Re-queue or drop.
    pub outcome: SliceOutcome,
    /// Conflicts spent by this slice (already charged to the shared
    /// [`BudgetPool`], reported for accounting).
    pub conflicts_spent: u64,
    /// Live solver-arena bytes after the slice (`0` once done) — the
    /// admission-control gauge.
    pub arena_bytes: u64,
}

/// One admitted request, sliceable until done.
pub struct Job {
    id: String,
    session: String,
    conn: u64,
    out: OutputHandle,
    cancel: CancelToken,
    deadline: Option<Instant>,
    /// Conflicts the request may still spend (`None` = uncapped). `reach`
    /// tracks this inside its driver instead.
    remaining_conflicts: Option<u64>,
    /// Cumulative conflicts already charged to the pool.
    charged_conflicts: u64,
    /// Accumulated engine counters (reach reads its driver's instead).
    counters: PreimageCounters,
    /// Consecutive slices that ended incomplete without any new result.
    /// A preimage session retires its target activation group after every
    /// call — even a budget-stopped one — so a "no more predecessors"
    /// UNSAT proof restarts from scratch each slice; a quantum smaller
    /// than that proof would livelock. Each stall doubles the effective
    /// quantum ([`Job::run_slice`]) until the job moves again.
    stalls: u32,
    timer: Timer,
    finished: bool,
    kind: JobKind,
}

enum JobKind {
    Solve {
        solver: Solver,
        num_vars: usize,
    },
    AllSat {
        inc: IncrementalAllSat,
        important: Vec<Var>,
        graph: SolutionGraph,
        accum: SolutionNodeId,
        max_solutions: Option<u64>,
    },
    Preimage {
        session: Box<dyn PreimageSession>,
        target: StateSet,
        position_vars: Vec<Var>,
        graph: SolutionGraph,
        accum: SolutionNodeId,
    },
    Reach {
        engine: SatPreimage,
        circuit: Circuit,
        driver: ReachDriver,
        emitted_rows: usize,
    },
}

/// Saturating `u128 → u64` for JSON counters.
fn sat_u64(x: u128) -> u64 {
    u64::try_from(x).unwrap_or(u64::MAX)
}

/// The absolute deadline a request's `timeout_ms` implies, if any. Routed
/// through [`Budget::with_timeout`] so an absurd timeout means "no
/// deadline" rather than an `Instant` overflow panic.
fn deadline_from(limits: &RequestLimits) -> Option<Instant> {
    limits
        .timeout_ms
        .and_then(|ms| Budget::unlimited().with_timeout(Duration::from_millis(ms)).deadline)
}

impl Job {
    /// Builds the sliceable state machine for a job request. `Stats`,
    /// `Cancel`, and `Shutdown` are not jobs and are rejected here.
    pub fn new(request: Request, conn: u64, out: OutputHandle) -> Result<Job, String> {
        let cancel = CancelToken::new();
        let (id, session, limits, kind) = match request {
            Request::Solve {
                id,
                session,
                cnf,
                limits,
            } => {
                let num_vars = cnf.num_vars();
                let mut solver = Solver::from_cnf(&cnf);
                solver.set_cancel(Some(cancel.clone()));
                (id, session, limits, JobKind::Solve { solver, num_vars })
            }
            Request::AllSat {
                id,
                session,
                cnf,
                project,
                limits,
                max_solutions,
            } => {
                let important: Vec<Var> = Var::range(project).collect();
                let inc = IncrementalAllSat::new(cnf, important.clone(), SuccessDrivenAllSat::new(), 1);
                (
                    id,
                    session,
                    limits,
                    JobKind::AllSat {
                        inc,
                        important,
                        graph: SolutionGraph::new(project),
                        accum: SolutionNodeId::BOTTOM,
                        max_solutions,
                    },
                )
            }
            Request::Preimage {
                id,
                session,
                circuit,
                target,
                limits,
            } => {
                let engine = SatPreimage::success_driven();
                let sess = engine
                    .open_session(&circuit)
                    .ok_or("engine offers no incremental session")?;
                let n = circuit.num_latches();
                (
                    id,
                    session,
                    limits,
                    JobKind::Preimage {
                        session: sess,
                        target,
                        position_vars: Var::range(n).collect(),
                        graph: SolutionGraph::new(n),
                        accum: SolutionNodeId::BOTTOM,
                    },
                )
            }
            Request::Reach {
                id,
                session,
                circuit,
                target,
                limits,
                max_iter,
            } => {
                let engine = SatPreimage::success_driven();
                let options = ReachOptions {
                    max_iterations: max_iter,
                    total_budget: Budget {
                        conflicts: limits.conflicts,
                        propagations: None,
                        deadline: deadline_from(&limits),
                    },
                    cancel: Some(cancel.clone()),
                    ..ReachOptions::default()
                };
                let driver = ReachDriver::new(&engine, &circuit, &target, options);
                (
                    id,
                    session,
                    limits,
                    JobKind::Reach {
                        engine,
                        circuit,
                        driver,
                        emitted_rows: 0,
                    },
                )
            }
            Request::Stats { .. } | Request::Cancel { .. } | Request::Shutdown { .. } => {
                return Err("internal: not a job op".into())
            }
        };
        let deadline = deadline_from(&limits);
        Ok(Job {
            id,
            session,
            conn,
            out,
            cancel,
            deadline,
            remaining_conflicts: limits.conflicts,
            charged_conflicts: 0,
            counters: PreimageCounters::default(),
            stalls: 0,
            timer: Timer::start(),
            finished: false,
            kind,
        })
    }

    /// The request id this job answers.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The tenant session the job belongs to.
    pub fn session_name(&self) -> &str {
        &self.session
    }

    /// The connection the job arrived on (its events go there, and a
    /// disconnect cancels it).
    pub fn conn(&self) -> u64 {
        self.conn
    }

    /// The job's cancellation token (`cancel` requests and disconnects
    /// trip it).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// `true` once the terminal event has been emitted.
    pub fn finished(&self) -> bool {
        self.finished
    }

    /// Live accumulated engine counters, for the `stats` endpoint. The
    /// `result_cubes` gauge is refreshed from the job's accumulator graph
    /// so a mid-run `stats` sees the result set grown so far, not just
    /// what the last engine call reported.
    pub fn counters(&self) -> PreimageCounters {
        let mut counters = match &self.kind {
            JobKind::Reach { driver, .. } => *driver.stats(),
            _ => self.counters,
        };
        counters.result_cubes = counters.result_cubes.max(self.result_cubes());
        counters
    }

    /// Cubes in the result set this job has accumulated so far: one per
    /// ⊤-path of the canonical accumulator graph (exactly what the `done`
    /// event will extract), counted without materialising them. `0` for
    /// `solve`, which has no cube result.
    pub fn result_cubes(&self) -> u64 {
        match &self.kind {
            JobKind::Solve { .. } => 0,
            JobKind::AllSat { graph, accum, .. } | JobKind::Preimage { graph, accum, .. } => {
                graph.cube_count(*accum)
            }
            JobKind::Reach { driver, .. } => driver.reached_cubes(),
        }
    }

    /// Live solver-arena bytes — what admission control sums per session.
    pub fn arena_bytes(&self) -> u64 {
        match &self.kind {
            JobKind::Solve { solver, .. } => solver.arena_bytes() as u64,
            JobKind::AllSat { inc, .. } => inc.arena_bytes(),
            JobKind::Preimage { session, .. } => session.arena_bytes(),
            JobKind::Reach { driver, .. } => driver.arena_bytes(),
        }
    }

    fn cumulative_conflicts(&self) -> u64 {
        self.counters().allsat.sat.conflicts
    }

    /// Finishes early (pool exhausted / cancelled / deadline) with the
    /// partial result accumulated so far.
    fn finish_early(&mut self, reason: StopReason) {
        match &mut self.kind {
            JobKind::Solve { .. } => emit_done_solve(
                &self.out,
                &self.id,
                &self.timer,
                &self.counters,
                "unknown",
                None,
                false,
                Some(reason),
            ),
            JobKind::AllSat {
                graph,
                accum,
                important,
                ..
            } => emit_done_allsat(
                &self.out,
                &self.id,
                &self.timer,
                &self.counters,
                graph,
                *accum,
                important,
                false,
                Some(reason),
            ),
            JobKind::Preimage {
                graph,
                accum,
                position_vars,
                ..
            } => emit_done_preimage(
                &self.out,
                &self.id,
                &self.timer,
                &self.counters,
                graph,
                *accum,
                position_vars,
                false,
                Some(reason),
            ),
            JobKind::Reach { driver, .. } => emit_done_reach(
                &self.out,
                &self.id,
                &self.timer,
                driver,
                Some((false, Some(reason))),
            ),
        }
        self.finished = true;
    }

    /// Runs one quantum of work. Streams progress events; on the terminal
    /// slice also emits the `done` event. Conflicts spent are charged to
    /// `pool` (when present) before returning.
    pub fn run_slice(&mut self, quantum: u64, pool: Option<&BudgetPool>) -> SliceReport {
        if self.finished {
            return SliceReport {
                outcome: SliceOutcome::Done,
                conflicts_spent: 0,
                arena_bytes: 0,
            };
        }
        // Stall escalation: a job whose last slices went nowhere gets an
        // exponentially larger quantum, guaranteeing forward progress even
        // when one quantum is smaller than an indivisible proof.
        let boost = 1u64.checked_shl(self.stalls.min(32)).unwrap_or(u64::MAX);
        let quantum = quantum.max(1).saturating_mul(boost);
        // Generic pre-slice stops: a drained shared pool, cooperative
        // cancellation, or an expired per-request deadline all terminate
        // the job with its sound partial result.
        let early = if let Some(reason) = pool.and_then(BudgetPool::exhausted) {
            Some(reason)
        } else if self.cancel.is_cancelled() {
            Some(StopReason::Cancelled)
        } else if self.deadline.is_some_and(|d| Instant::now() >= d) {
            Some(StopReason::Deadline)
        } else {
            None
        };
        if let Some(reason) = early {
            self.finish_early(reason);
        } else {
            self.run_slice_inner(quantum);
        }
        let cum = self.cumulative_conflicts();
        let spent = cum.saturating_sub(self.charged_conflicts);
        self.charged_conflicts = cum;
        if let Some(p) = pool {
            // A charge that trips the pool is picked up by every job's next
            // pre-slice check; nothing to do here.
            let _ = p.charge(spent, 0);
        }
        SliceReport {
            outcome: if self.finished {
                SliceOutcome::Done
            } else {
                SliceOutcome::Continue
            },
            conflicts_spent: spent,
            arena_bytes: if self.finished { 0 } else { self.arena_bytes() },
        }
    }

    fn run_slice_inner(&mut self, quantum: u64) {
        // One quantum, but never more than the request has left and never
        // past its deadline.
        let request_remaining = Budget {
            conflicts: self.remaining_conflicts,
            propagations: None,
            deadline: self.deadline,
        };
        let slice = Budget::unlimited()
            .with_conflicts(quantum)
            .clipped_to(&request_remaining);
        let Job {
            id,
            out,
            cancel,
            remaining_conflicts,
            counters,
            stalls,
            timer,
            finished,
            kind,
            ..
        } = self;
        match kind {
            JobKind::Solve { solver, num_vars } => {
                // `reset_stats` makes the solver's counters a per-slice
                // delta; `set_budget` then installs a fresh quantum
                // against the zeroed baseline — the resume mechanism.
                solver.reset_stats();
                solver.set_budget(slice);
                let solved = solver.solve();
                let delta = *solver.stats();
                counters.allsat.sat.absorb(&delta);
                if let Some(r) = remaining_conflicts.as_mut() {
                    *r = r.saturating_sub(delta.conflicts);
                }
                match solved {
                    SolveResult::Sat(model) => {
                        let mut line = String::new();
                        for i in 0..*num_vars {
                            let value = model.value(Var::new(i)) == Some(true);
                            let v = i as i64 + 1;
                            line.push_str(&format!("{} ", if value { v } else { -v }));
                        }
                        line.push('0');
                        emit_done_solve(out, id, timer, counters, "sat", Some(&line), true, None);
                        *finished = true;
                    }
                    SolveResult::Unsat => {
                        emit_done_solve(out, id, timer, counters, "unsat", None, true, None);
                        *finished = true;
                    }
                    SolveResult::Unknown(reason) => {
                        let out_of_conflicts = matches!(
                            reason,
                            StopReason::Conflicts | StopReason::Propagations
                        );
                        if out_of_conflicts && *remaining_conflicts != Some(0) {
                            // The quantum tripped, not the request budget:
                            // stay queued and resume next slice.
                        } else {
                            emit_done_solve(
                                out,
                                id,
                                timer,
                                counters,
                                "unknown",
                                None,
                                false,
                                Some(reason),
                            );
                            *finished = true;
                        }
                    }
                }
            }
            JobKind::AllSat {
                inc,
                important,
                graph,
                accum,
                max_solutions,
            } => {
                // Solution caps count the whole job, not the slice: hand
                // the engine only what the request still allows.
                let found = graph.minterm_count(*accum);
                let remaining_solutions =
                    max_solutions.map(|m| m.saturating_sub(sat_u64(found)));
                if remaining_solutions == Some(0) {
                    emit_done_allsat(
                        out,
                        id,
                        timer,
                        counters,
                        graph,
                        *accum,
                        important,
                        false,
                        Some(StopReason::MaxSolutions),
                    );
                    *finished = true;
                    return;
                }
                let limits = EnumLimits {
                    budget: slice,
                    cancel: Some(cancel.clone()),
                    max_solutions: remaining_solutions,
                };
                let r = inc.enumerate_limited(&[], &limits, &mut NullSink);
                *stalls = if r.complete || !r.cubes.is_empty() {
                    0
                } else {
                    stalls.saturating_add(1)
                };
                counters.allsat.absorb(&r.stats);
                if let Some(rc) = remaining_conflicts.as_mut() {
                    *rc = rc.saturating_sub(r.stats.sat.conflicts);
                }
                let node = graph.add_cube_set(&r.cubes, important);
                *accum = graph.union(*accum, node);
                if !r.cubes.is_empty() {
                    let rows: Vec<String> = r.cubes.iter().map(dimacs_cube).collect();
                    out.send_line(&cubes_event(id, rows));
                }
                if r.complete {
                    emit_done_allsat(
                        out, id, timer, counters, graph, *accum, important, true, None,
                    );
                    *finished = true;
                    return;
                }
                // Block this slice's cubes permanently so the next slice
                // resumes where this one stopped instead of re-finding
                // them (truncated runs never poison the cache, so the
                // persistent enumerator stays sound).
                for cube in &r.cubes {
                    let blocking: Vec<_> = cube.lits().iter().map(|&l| !l).collect();
                    inc.add_clause(blocking);
                }
                match r.stop_reason {
                    Some(StopReason::Conflicts | StopReason::Propagations)
                        if *remaining_conflicts != Some(0) =>
                    {
                        // Quantum exhausted, request budget not: re-queue.
                    }
                    Some(reason) => {
                        emit_done_allsat(
                            out,
                            id,
                            timer,
                            counters,
                            graph,
                            *accum,
                            important,
                            false,
                            Some(reason),
                        );
                        *finished = true;
                    }
                    None => {}
                }
            }
            JobKind::Preimage {
                session,
                target,
                position_vars,
                graph,
                accum,
            } => {
                let limits = EnumLimits {
                    budget: slice,
                    cancel: Some(cancel.clone()),
                    max_solutions: None,
                };
                let pre = session.preimage_limited(target, &limits, &mut NullSink);
                *stalls = if pre.complete || pre.states.num_cubes() > 0 {
                    0
                } else {
                    stalls.saturating_add(1)
                };
                counters.absorb(&pre.stats);
                if let Some(rc) = remaining_conflicts.as_mut() {
                    *rc = rc.saturating_sub(pre.stats.allsat.sat.conflicts);
                }
                // Block what this slice verified so the next slice
                // enumerates only Pre(target) ∖ (already found); the union
                // across slices is exactly Pre(target).
                session.block_states(&pre.states);
                let node = graph.add_cube_set(pre.states.cubes(), position_vars);
                *accum = graph.union(*accum, node);
                if pre.states.num_cubes() > 0 {
                    let rows: Vec<String> =
                        pre.states.cubes().iter().map(|c| c.to_string()).collect();
                    out.send_line(&cubes_event(id, rows));
                }
                if pre.complete {
                    emit_done_preimage(
                        out, id, timer, counters, graph, *accum, position_vars, true, None,
                    );
                    *finished = true;
                    return;
                }
                match pre.stop_reason {
                    Some(StopReason::Conflicts | StopReason::Propagations)
                        if *remaining_conflicts != Some(0) => {}
                    Some(reason) => {
                        emit_done_preimage(
                            out,
                            id,
                            timer,
                            counters,
                            graph,
                            *accum,
                            position_vars,
                            false,
                            Some(reason),
                        );
                        *finished = true;
                    }
                    None => {}
                }
            }
            JobKind::Reach {
                engine,
                circuit,
                driver,
                emitted_rows,
            } => {
                // The driver owns the request's total budget and deadline;
                // the slice only caps this step's quantum.
                let slice_b = Budget::unlimited().with_conflicts(quantum);
                let step = driver.step(&*engine, circuit, &slice_b, &mut NullSink);
                let rows = driver.iteration_rows();
                *stalls = match step {
                    ReachStep::Interrupted(_)
                        if rows[*emitted_rows..].iter().all(|r| r.new_states == 0) =>
                    {
                        stalls.saturating_add(1)
                    }
                    _ => 0,
                };
                for row in &rows[*emitted_rows..] {
                    out.send_line(&iteration_event(
                        id,
                        row.iteration as u64,
                        sat_u64(row.new_states),
                        sat_u64(row.reached_states),
                    ));
                }
                *emitted_rows = rows.len();
                match step {
                    ReachStep::Advanced => {}
                    // Mid-frontier counter stops resume on the next slice;
                    // the driver itself turns a spent total budget into
                    // `Done` on that next step.
                    ReachStep::Interrupted(
                        StopReason::Conflicts | StopReason::Propagations,
                    ) => {}
                    ReachStep::Interrupted(_) | ReachStep::Done => {
                        emit_done_reach(out, id, timer, driver, None);
                        *finished = true;
                    }
                }
            }
        }
    }
}

fn stats_field(mut stats: Stats, timer: &Timer, complete: bool, stop: Option<StopReason>) -> String {
    stats.wall_time_ns = timer.elapsed_ns();
    stats.with_stop(complete, stop).to_json()
}

#[allow(clippy::too_many_arguments)]
fn emit_done_solve(
    out: &OutputHandle,
    id: &str,
    timer: &Timer,
    counters: &PreimageCounters,
    result: &str,
    model: Option<&str>,
    complete: bool,
    stop: Option<StopReason>,
) {
    let mut ev = DoneEvent::new(id, "solve", complete, stop).str_field("result", result);
    if let Some(m) = model {
        ev = ev.str_field("model", m);
    }
    let stats = Stats::from_sat("cdcl", &counters.allsat.sat);
    out.send_line(
        &ev.raw_field("stats", &stats_field(stats, timer, complete, stop))
            .finish(),
    );
}

#[allow(clippy::too_many_arguments)]
fn emit_done_allsat(
    out: &OutputHandle,
    id: &str,
    timer: &Timer,
    counters: &PreimageCounters,
    graph: &SolutionGraph,
    accum: SolutionNodeId,
    important: &[Var],
    complete: bool,
    stop: Option<StopReason>,
) {
    // The canonical extraction: identical to what the one-shot CLI run
    // prints for the same solution set, however the slices fell.
    let cube_set = graph.to_cube_set(accum, important);
    let rows: Vec<String> = cube_set.iter().map(dimacs_cube).collect();
    let ev = DoneEvent::new(id, "allsat", complete, stop)
        .u64_field("num_cubes", rows.len() as u64)
        .u64_field("solutions", sat_u64(graph.minterm_count(accum)))
        .raw_field("cubes", &string_array(rows));
    let stats = Stats::from_allsat("success-driven", &counters.allsat);
    out.send_line(
        &ev.raw_field("stats", &stats_field(stats, timer, complete, stop))
            .finish(),
    );
}

#[allow(clippy::too_many_arguments)]
fn emit_done_preimage(
    out: &OutputHandle,
    id: &str,
    timer: &Timer,
    counters: &PreimageCounters,
    graph: &SolutionGraph,
    accum: SolutionNodeId,
    position_vars: &[Var],
    complete: bool,
    stop: Option<StopReason>,
) {
    let cube_set = graph.to_cube_set(accum, position_vars);
    let rows: Vec<String> = cube_set.iter().map(|c| c.to_string()).collect();
    let ev = DoneEvent::new(id, "preimage", complete, stop)
        .u64_field("states", sat_u64(graph.minterm_count(accum)))
        .u64_field("num_cubes", rows.len() as u64)
        .raw_field("cubes", &string_array(rows));
    let stats = Stats::from_preimage("success-driven", counters);
    out.send_line(
        &ev.raw_field("stats", &stats_field(stats, timer, complete, stop))
            .finish(),
    );
}

fn emit_done_reach(
    out: &OutputHandle,
    id: &str,
    timer: &Timer,
    driver: &ReachDriver,
    forced: Option<(bool, Option<StopReason>)>,
) {
    let report = driver.report();
    let (complete, stop) = forced.unwrap_or((report.complete, report.stop_reason));
    let rows: Vec<String> = report.reached.cubes().iter().map(|c| c.to_string()).collect();
    let ev = DoneEvent::new(id, "reach", complete, stop)
        .bool_field("converged", report.converged)
        .u64_field("iterations", report.iterations.len() as u64)
        .u64_field("reached_states", sat_u64(report.reached_states))
        .u64_field("num_cubes", rows.len() as u64)
        .raw_field("cubes", &string_array(rows));
    let stats = Stats::from_preimage("success-driven", &report.stats);
    out.send_line(
        &ev.raw_field("stats", &stats_field(stats, timer, complete, stop))
            .finish(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    /// An `OutputHandle` whose lines can be read back by the test.
    fn capture() -> (OutputHandle, Arc<Mutex<Vec<u8>>>) {
        #[derive(Clone)]
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("sink lock").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        (OutputHandle::new(Box::new(Sink(buf.clone()))), buf)
    }

    fn lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<String> {
        String::from_utf8(buf.lock().expect("sink lock").clone())
            .expect("utf8 output")
            .lines()
            .map(str::to_string)
            .collect()
    }

    fn job_from(line: &str, out: OutputHandle) -> Job {
        let req = parse_request(line).expect("request parses");
        Job::new(req, 0, out).expect("job builds")
    }

    fn drive(job: &mut Job, quantum: u64) -> usize {
        let mut slices = 0;
        while job.run_slice(quantum, None).outcome == SliceOutcome::Continue {
            slices += 1;
            assert!(slices < 100_000, "job failed to terminate");
        }
        slices + 1
    }

    #[test]
    fn sliced_allsat_matches_the_one_shot_enumeration() {
        // x1 ∨ x2, projected onto both: one-shot enumeration of this set
        // prints exactly two canonical cubes.
        let cnf_text = "p cnf 3 2\n1 2 0\n-3 1 0\n";
        let (out, buf) = capture();
        let mut job = job_from(
            &format!(
                r#"{{"op":"allsat","id":"a","cnf":"{}","project":2}}"#,
                cnf_text.replace('\n', "\\n")
            ),
            out,
        );
        // One-conflict quanta force many resume slices.
        drive(&mut job, 1);
        let all = lines(&buf);
        let done = all.last().expect("a done event");
        assert!(done.contains(r#""event":"done""#), "{done}");
        assert!(done.contains(r#""complete":true"#), "{done}");

        // Reference: the sequential engine on the same problem.
        use presat_allsat::{AllSatEngine, AllSatProblem};
        let cnf = presat_logic::dimacs::parse(cnf_text).expect("cnf");
        let reference = SuccessDrivenAllSat::new()
            .enumerate(&AllSatProblem::new(cnf, Var::range(2).collect()));
        let want: Vec<String> = reference.cubes.iter().map(dimacs_cube).collect();
        assert!(
            done.contains(&string_array(want.clone())),
            "done {done} should carry exactly {want:?}"
        );
    }

    #[test]
    fn sliced_solve_reports_sat_with_a_model() {
        let (out, buf) = capture();
        let mut job = job_from(
            r#"{"op":"solve","id":"s","cnf":"p cnf 2 2\n1 2 0\n-1 2 0\n"}"#,
            out,
        );
        drive(&mut job, 1);
        let all = lines(&buf);
        let done = all.last().expect("done");
        assert!(done.contains(r#""result":"sat""#), "{done}");
        assert!(done.contains(r#""model":"#), "{done}");
    }

    #[test]
    fn conflict_budget_stops_a_job_with_a_partial_result() {
        // A hard-ish pigeonhole-style UNSAT formula would be ideal; a
        // zero-conflict budget works on anything nontrivial.
        let (out, buf) = capture();
        let mut job = job_from(
            r#"{"op":"allsat","id":"b","cnf":"p cnf 2 1\n1 2 0\n","project":2,"conflict_budget":0}"#,
            out,
        );
        drive(&mut job, 10);
        let all = lines(&buf);
        let done = all.last().expect("done");
        // Either it finished inside zero conflicts (tiny formula) or it
        // reports a sound partial result with the conflicts stop reason.
        assert!(
            done.contains(r#""complete":true"#) || done.contains(r#""stop_reason":"conflicts""#),
            "{done}"
        );
    }

    #[test]
    fn cancelled_job_finishes_with_cancelled_reason() {
        let (out, buf) = capture();
        let mut job = job_from(
            r#"{"op":"reach","id":"r","circuit":"INPUT(a)\nOUTPUT(y)\ns0 = DFF(n0)\ns1 = DFF(n1)\nn0 = XOR(s0, a)\nn1 = XOR(s1, s0)\ny = AND(s0, s1)\n","target":"0b00"}"#,
            out,
        );
        job.cancel_token().cancel();
        let r = job.run_slice(100, None);
        assert_eq!(r.outcome, SliceOutcome::Done);
        let all = lines(&buf);
        let done = all.last().expect("done");
        assert!(done.contains(r#""stop_reason":"cancelled""#), "{done}");
        assert!(done.contains(r#""complete":false"#), "{done}");
    }

    #[test]
    fn sliced_reach_converges_and_reports_iterations() {
        let (out, buf) = capture();
        let mut job = job_from(
            r#"{"op":"reach","id":"r2","circuit":"INPUT(a)\nOUTPUT(y)\ns0 = DFF(n0)\ns1 = DFF(n1)\nn0 = NOT(s0)\nn1 = XOR(s1, s0)\ny = AND(s0, s1)\n","target":"0b00"}"#,
            out,
        );
        drive(&mut job, 1);
        let all = lines(&buf);
        let done = all.last().expect("done");
        assert!(done.contains(r#""converged":true"#), "{done}");
        assert!(done.contains(r#""complete":true"#), "{done}");
        // Iteration rows streamed before the done event.
        assert!(
            all.iter().any(|l| l.contains(r#""event":"iteration""#)),
            "{all:?}"
        );
    }
}
