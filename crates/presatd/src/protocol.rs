//! The `presatd` wire protocol: line-delimited JSON in both directions.
//!
//! # Requests
//!
//! One JSON object per line. Every request carries `"op"` and `"id"` (a
//! client-chosen string echoed on every response); job ops additionally
//! take `"session"` (tenant name, default `"default"`) and the
//! problem payload:
//!
//! ```text
//! {"op":"solve",   "id":"r1", "cnf":"p cnf 2 1\n1 2 0\n"}
//! {"op":"allsat",  "id":"r2", "cnf_path":"f.cnf", "project":3}
//! {"op":"preimage","id":"r3", "circuit_path":"c.bench", "target":"0b101"}
//! {"op":"reach",   "id":"r4", "circuit":"INPUT(a)\n...", "target":"3=1"}
//! {"op":"stats",   "id":"m1"}
//! {"op":"cancel",  "id":"c1", "job":"r4"}
//! {"op":"shutdown","id":"x1"}
//! ```
//!
//! * `cnf` / `cnf_path` — inline DIMACS text or a server-side path.
//! * `circuit` / `circuit_path` — inline `.bench`/`.aag` text (AIGER is
//!   recognized by its `aag ` header) or a server-side path.
//! * `target` — a state spec in exactly the CLI's grammar
//!   ([`presat_preimage::parse_state_spec`]): bit pattern (`42`, `0b1010`,
//!   `0x2a`, arbitrary-width `0b`/`0x` for circuits beyond 64 latches) or
//!   cube `latch=value,...`.
//! * `timeout_ms` / `conflict_budget` — per-request anytime limits
//!   ([`presat_sat::Budget`]); `max_solutions` caps `allsat`, `max_iter`
//!   caps `reach`.
//!
//! # Responses
//!
//! Newline-JSON events, each echoing `"id"`: `accepted`, zero or more
//! streaming events (`cubes` as partial cube sets are found, `iteration`
//! per reach fixed-point round), and exactly one terminal `done` / `error`.
//! `stats` answers with one `stats` event carrying a per-session
//! [`presat_obs::Stats`] snapshot array.

use std::path::Path;

use presat_circuit::{aiger, bench, Circuit};
use presat_logic::{dimacs, Cnf, Cube};
use presat_obs::{JsonObject, StopReason};
use presat_preimage::{parse_state_spec, StateSet};

use crate::json::{escape, Json};

/// Hard cap on one request line, in bytes (includes the newline). Inline
/// CNF/circuit payloads must fit; anything larger is rejected with an
/// `error` event before parsing.
pub const MAX_REQUEST_BYTES: usize = 4 << 20;

/// The ops a request may name, for error messages.
pub const VALID_OPS: &str = "solve, allsat, preimage, reach, stats, cancel, shutdown";

/// Per-request anytime limits, straight from the request fields.
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestLimits {
    /// `timeout_ms` — becomes an absolute [`presat_sat::Budget::deadline`]
    /// at admission time.
    pub timeout_ms: Option<u64>,
    /// `conflict_budget` — total CDCL conflicts this request may spend.
    pub conflicts: Option<u64>,
}

/// One parsed, validated request.
pub enum Request {
    /// Decide satisfiability of a DIMACS formula.
    Solve {
        /// Client-chosen request id, echoed on every event.
        id: String,
        /// Tenant session name.
        session: String,
        /// The formula.
        cnf: Cnf,
        /// Anytime limits.
        limits: RequestLimits,
    },
    /// Enumerate all models projected onto the first `project` variables.
    AllSat {
        /// Client-chosen request id.
        id: String,
        /// Tenant session name.
        session: String,
        /// The formula.
        cnf: Cnf,
        /// Number of leading variables to project onto.
        project: usize,
        /// Anytime limits.
        limits: RequestLimits,
        /// Stop after at least this many solutions.
        max_solutions: Option<u64>,
    },
    /// One-step preimage of a target state set.
    Preimage {
        /// Client-chosen request id.
        id: String,
        /// Tenant session name.
        session: String,
        /// The circuit.
        circuit: Circuit,
        /// The target set.
        target: StateSet,
        /// Anytime limits.
        limits: RequestLimits,
    },
    /// Backward reachability to a fixed point.
    Reach {
        /// Client-chosen request id.
        id: String,
        /// Tenant session name.
        session: String,
        /// The circuit.
        circuit: Circuit,
        /// The target set.
        target: StateSet,
        /// Anytime limits.
        limits: RequestLimits,
        /// Iteration cap (`None` = run to the fixed point).
        max_iter: Option<usize>,
    },
    /// Live per-session counter snapshot.
    Stats {
        /// Client-chosen request id.
        id: String,
    },
    /// Cancel a running job on this connection.
    Cancel {
        /// Client-chosen request id.
        id: String,
        /// The id of the job to cancel.
        job: String,
    },
    /// Stop accepting work, cancel running jobs, exit.
    Shutdown {
        /// Client-chosen request id.
        id: String,
    },
}

impl Request {
    /// The request's id (echoed on responses).
    pub fn id(&self) -> &str {
        match self {
            Request::Solve { id, .. }
            | Request::AllSat { id, .. }
            | Request::Preimage { id, .. }
            | Request::Reach { id, .. }
            | Request::Stats { id }
            | Request::Cancel { id, .. }
            | Request::Shutdown { id } => id,
        }
    }

    /// The op name, for the `accepted` event.
    pub fn op(&self) -> &'static str {
        match self {
            Request::Solve { .. } => "solve",
            Request::AllSat { .. } => "allsat",
            Request::Preimage { .. } => "preimage",
            Request::Reach { .. } => "reach",
            Request::Stats { .. } => "stats",
            Request::Cancel { .. } => "cancel",
            Request::Shutdown { .. } => "shutdown",
        }
    }
}

/// Parses and validates one request line. Every failure is a protocol
/// `error` string — never a panic — and the strings are part of the
/// documented interface.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| format!("malformed JSON request: {e}"))?;
    if !matches!(v, Json::Obj(_)) {
        return Err("request must be a JSON object".into());
    }
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request is missing \"op\"")?;
    let id = v
        .get("id")
        .and_then(Json::as_str)
        .ok_or("request is missing \"id\"")?
        .to_string();
    let session = v
        .get("session")
        .and_then(Json::as_str)
        .unwrap_or("default")
        .to_string();
    let limits = RequestLimits {
        timeout_ms: field_u64(&v, "timeout_ms")?,
        conflicts: field_u64(&v, "conflict_budget")?,
    };
    match op {
        "solve" => Ok(Request::Solve {
            id,
            session,
            cnf: load_cnf(&v)?,
            limits,
        }),
        "allsat" => {
            let cnf = load_cnf(&v)?;
            let project = v
                .get("project")
                .ok_or("allsat: \"project\" required")?
                .as_usize()
                .ok_or("allsat: \"project\" must be a non-negative integer")?;
            if project > cnf.num_vars() {
                return Err(format!(
                    "allsat: project {project} exceeds the formula's {} variables",
                    cnf.num_vars()
                ));
            }
            Ok(Request::AllSat {
                id,
                session,
                cnf,
                project,
                limits,
                max_solutions: field_u64(&v, "max_solutions")?,
            })
        }
        "preimage" | "reach" => {
            let circuit = load_circuit(&v)?;
            let spec = v
                .get("target")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("{op}: \"target\" required"))?;
            let target = parse_state_spec(spec, circuit.num_latches())?;
            if op == "preimage" {
                Ok(Request::Preimage {
                    id,
                    session,
                    circuit,
                    target,
                    limits,
                })
            } else {
                let max_iter = v
                    .get("max_iter")
                    .map(|j| j.as_usize().ok_or("reach: \"max_iter\" must be a non-negative integer"))
                    .transpose()?;
                Ok(Request::Reach {
                    id,
                    session,
                    circuit,
                    target,
                    limits,
                    max_iter,
                })
            }
        }
        "stats" => Ok(Request::Stats { id }),
        "cancel" => Ok(Request::Cancel {
            id,
            job: v
                .get("job")
                .and_then(Json::as_str)
                .ok_or("cancel: \"job\" required (the id of the request to cancel)")?
                .to_string(),
        }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err(format!("unknown op {other:?} (valid ops: {VALID_OPS})")),
    }
}

fn field_u64(v: &Json, name: &str) -> Result<Option<u64>, String> {
    match v.get(name) {
        None | Some(Json::Null) => Ok(None),
        Some(j) => j
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("\"{name}\" must be a non-negative integer")),
    }
}

fn load_cnf(v: &Json) -> Result<Cnf, String> {
    let text = match (
        v.get("cnf").and_then(Json::as_str),
        v.get("cnf_path").and_then(Json::as_str),
    ) {
        (Some(inline), None) => inline.to_string(),
        (None, Some(path)) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?
        }
        (Some(_), Some(_)) => return Err("give \"cnf\" or \"cnf_path\", not both".into()),
        (None, None) => return Err("\"cnf\" (inline DIMACS) or \"cnf_path\" required".into()),
    };
    dimacs::parse(&text).map_err(|e| format!("bad DIMACS: {e}"))
}

fn load_circuit(v: &Json) -> Result<Circuit, String> {
    let (text, name_hint) = match (
        v.get("circuit").and_then(Json::as_str),
        v.get("circuit_path").and_then(Json::as_str),
    ) {
        (Some(inline), None) => (inline.to_string(), None),
        (None, Some(path)) => (
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path:?}: {e}"))?,
            Path::new(path)
                .file_stem()
                .and_then(|s| s.to_str())
                .map(str::to_string),
        ),
        (Some(_), Some(_)) => return Err("give \"circuit\" or \"circuit_path\", not both".into()),
        (None, None) => {
            return Err("\"circuit\" (inline .bench/.aag) or \"circuit_path\" required".into())
        }
    };
    // Same format rules as the CLI: `.aag` AIGER by extension or header,
    // `.bench` otherwise.
    let is_aiger = name_hint.is_none() && text.trim_start().starts_with("aag ")
        || v.get("circuit_path")
            .and_then(Json::as_str)
            .is_some_and(|p| p.ends_with(".aag"));
    let mut circuit = if is_aiger {
        aiger::parse(&text).map_err(|e| format!("bad AIGER: {e}"))?
    } else {
        bench::parse(&text).map_err(|e| format!("bad bench netlist: {e}"))?
    };
    if let Some(stem) = name_hint {
        circuit.set_name(&stem);
    }
    circuit.validate().map_err(|e| format!("invalid circuit: {e}"))?;
    Ok(circuit)
}

// ---------------------------------------------------------------------------
// Response events
// ---------------------------------------------------------------------------

/// `{"id":…,"event":"accepted","op":…,"session":…}`
pub fn accepted_event(id: &str, op: &str, session: &str) -> String {
    let mut o = JsonObject::new();
    o.field_str("id", id)
        .field_str("event", "accepted")
        .field_str("op", op)
        .field_str("session", session);
    o.finish()
}

/// `{"id":…,"event":"error","message":…}` — also the shape for rejected
/// lines that never became a request (empty `id`).
pub fn error_event(id: &str, message: &str) -> String {
    let mut o = JsonObject::new();
    o.field_str("id", id)
        .field_str("event", "error")
        .field_str("message", message);
    o.finish()
}

/// `{"id":…,"event":"ok","op":…}` — acknowledgment for `cancel`/`shutdown`.
pub fn ok_event(id: &str, op: &str) -> String {
    let mut o = JsonObject::new();
    o.field_str("id", id).field_str("event", "ok").field_str("op", op);
    o.finish()
}

/// A JSON array of strings, for [`JsonObject::field_raw`].
pub fn string_array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(&item));
        out.push('"');
    }
    out.push(']');
    out
}

/// A cube rendered the way `presat allsat` prints one: signed 1-based
/// DIMACS literals terminated by `0`.
pub fn dimacs_cube(cube: &Cube) -> String {
    let mut row = String::new();
    for &l in cube.lits() {
        let v = l.var().index() as i64 + 1;
        row.push_str(&format!("{} ", if l.is_pos() { v } else { -v }));
    }
    row.push('0');
    row
}

/// `{"id":…,"event":"cubes","count":…,"cubes":[…]}` — a partial cube batch
/// streamed as it is found.
pub fn cubes_event(id: &str, cubes: Vec<String>) -> String {
    let count = cubes.len() as u64;
    let mut o = JsonObject::new();
    o.field_str("id", id)
        .field_str("event", "cubes")
        .field_u64("count", count)
        .field_raw("cubes", &string_array(cubes));
    o.finish()
}

/// `{"id":…,"event":"iteration",…}` — one reach fixed-point row.
pub fn iteration_event(id: &str, iteration: u64, new_states: u64, reached_states: u64) -> String {
    let mut o = JsonObject::new();
    o.field_str("id", id)
        .field_str("event", "iteration")
        .field_u64("iteration", iteration)
        .field_u64("new_states", new_states)
        .field_u64("reached_states", reached_states);
    o.finish()
}

/// Builder for the terminal `done` event: common envelope + op payload.
pub struct DoneEvent {
    o: JsonObject,
}

impl DoneEvent {
    /// Starts the envelope: id, op, completion flag, stop reason.
    pub fn new(id: &str, op: &str, complete: bool, stop: Option<StopReason>) -> Self {
        let mut o = JsonObject::new();
        o.field_str("id", id)
            .field_str("event", "done")
            .field_str("op", op)
            .field_bool("complete", complete);
        if let Some(reason) = stop {
            o.field_str("stop_reason", reason.as_str());
        }
        DoneEvent { o }
    }

    /// Adds a string payload field.
    pub fn str_field(mut self, name: &str, value: &str) -> Self {
        self.o.field_str(name, value);
        self
    }

    /// Adds an integer payload field.
    pub fn u64_field(mut self, name: &str, value: u64) -> Self {
        self.o.field_u64(name, value);
        self
    }

    /// Adds a boolean payload field.
    pub fn bool_field(mut self, name: &str, value: bool) -> Self {
        self.o.field_bool(name, value);
        self
    }

    /// Adds a pre-rendered JSON payload field (cube arrays, stats).
    pub fn raw_field(mut self, name: &str, raw: &str) -> Self {
        self.o.field_raw(name, raw);
        self
    }

    /// Finishes the event line.
    pub fn finish(self) -> String {
        self.o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use presat_obs::json::validate;

    #[test]
    fn parses_an_inline_allsat_request() {
        let line = r#"{"op":"allsat","id":"r1","cnf":"p cnf 2 1\n1 2 0\n","project":2,"conflict_budget":100}"#;
        match parse_request(line) {
            Ok(Request::AllSat {
                id,
                session,
                project,
                limits,
                ..
            }) => {
                assert_eq!(id, "r1");
                assert_eq!(session, "default");
                assert_eq!(project, 2);
                assert_eq!(limits.conflicts, Some(100));
                assert_eq!(limits.timeout_ms, None);
            }
            other => panic!("unexpected parse: {:?}", other.map(|r| r.op())),
        }
    }

    #[test]
    fn parses_an_inline_reach_request_with_wide_spec_path() {
        let line = r#"{"op":"reach","id":"r2","session":"t","circuit":"INPUT(a)\nOUTPUT(y)\ns = DFF(n)\nn = XOR(a, s)\ny = NOT(s)\n","target":"0b1"}"#;
        match parse_request(line) {
            Ok(Request::Reach {
                session, target, ..
            }) => {
                assert_eq!(session, "t");
                assert_eq!(target.minterm_count(1), 1);
            }
            other => panic!("unexpected parse: {:?}", other.map(|r| r.op())),
        }
    }

    #[test]
    fn rejects_bad_requests_with_protocol_errors() {
        for (line, want) in [
            ("{", "malformed JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"id":"x"}"#, "missing \"op\""),
            (r#"{"op":"solve"}"#, "missing \"id\""),
            (r#"{"op":"frobnicate","id":"x"}"#, "unknown op"),
            (r#"{"op":"solve","id":"x"}"#, "\"cnf\""),
            (
                r#"{"op":"allsat","id":"x","cnf":"p cnf 1 0\n"}"#,
                "\"project\" required",
            ),
            (
                r#"{"op":"allsat","id":"x","cnf":"p cnf 1 0\n","project":9}"#,
                "exceeds the formula's 1 variables",
            ),
            (
                r#"{"op":"reach","id":"x","circuit":"INPUT(a)\nOUTPUT(y)\ns = DFF(a)\ny = NOT(s)\n","target":"0b11"}"#,
                "out of range for 1 latches",
            ),
            (
                r#"{"op":"solve","id":"x","cnf":"p cnf 1 0\n","timeout_ms":-3}"#,
                "must be a non-negative integer",
            ),
            (r#"{"op":"cancel","id":"x"}"#, "\"job\" required"),
        ] {
            let err = parse_request(line).map(|r| r.op().to_string()).expect_err(line);
            assert!(err.contains(want), "{line}: {err}");
        }
    }

    #[test]
    fn events_are_valid_json() {
        for text in [
            accepted_event("r1", "allsat", "default"),
            error_event("", "malformed JSON request: x"),
            ok_event("c1", "cancel"),
            cubes_event("r1", vec!["1 -2 0".into(), "x \"y\"".into()]),
            iteration_event("r4", 3, 2, 7),
            DoneEvent::new("r1", "solve", false, Some(StopReason::Conflicts))
                .str_field("result", "unknown")
                .finish(),
        ] {
            validate(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        }
    }

    #[test]
    fn dimacs_cube_matches_cli_rendering() {
        use presat_logic::{Lit, Var};
        let cube = Cube::from_lits([Lit::pos(Var::new(0)), Lit::neg(Var::new(2))])
            .expect("distinct vars");
        assert_eq!(dimacs_cube(&cube), "1 -3 0");
        assert_eq!(dimacs_cube(&Cube::from_lits([]).expect("empty")), "0");
    }
}
