//! Transports: line-JSON over stdin/stdout, TCP, or a Unix socket.
//!
//! One transport per daemon invocation. Every connection gets its own
//! reader thread (hand-rolled thread-per-connection — pure std) and a
//! shared [`OutputHandle`] that the scheduler's workers write events to
//! concurrently. Request lines are read with a hard
//! [`MAX_REQUEST_BYTES`] bound: an oversized line is rejected with an
//! `error` event and skipped without buffering it, so a hostile client
//! cannot balloon daemon memory.
//!
//! Disconnect semantics differ by transport on purpose: a socket client
//! vanishing mid-stream cancels its jobs (nobody is listening), while
//! stdin EOF *drains* — queued work finishes and streams to stdout before
//! the daemon exits, which is what `echo '…' | presatd --stdin` wants.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::json::Json;
use crate::output::OutputHandle;
use crate::protocol::{error_event, parse_request, Request, MAX_REQUEST_BYTES};
use crate::scheduler::Scheduler;

/// Connection ids are daemon-unique (stdin is connection `0`).
static NEXT_CONN: AtomicU64 = AtomicU64::new(1);

enum LineOutcome {
    /// A complete request line (newline stripped).
    Line(String),
    /// The line crossed [`MAX_REQUEST_BYTES`] and was discarded up to its
    /// newline.
    Oversized,
    /// End of stream.
    Eof,
}

/// Reads one newline-terminated line, enforcing the request size cap
/// without ever buffering more than the cap.
fn read_bounded_line<R: BufRead>(reader: &mut R) -> std::io::Result<LineOutcome> {
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    loop {
        let chunk = reader.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a trailing unterminated line still counts.
            if discarding {
                return Ok(LineOutcome::Oversized);
            }
            if line.is_empty() {
                return Ok(LineOutcome::Eof);
            }
            return Ok(LineOutcome::Line(String::from_utf8_lossy(&line).into_owned()));
        }
        let newline = chunk.iter().position(|&b| b == b'\n');
        let take = newline.map_or(chunk.len(), |i| i + 1);
        if !discarding {
            let keep = newline.map_or(chunk.len(), |i| i);
            line.extend_from_slice(&chunk[..keep.min(take)]);
            if line.len() > MAX_REQUEST_BYTES {
                line.clear();
                discarding = true;
            }
        }
        reader.consume(take);
        if newline.is_some() {
            if discarding {
                return Ok(LineOutcome::Oversized);
            }
            return Ok(LineOutcome::Line(String::from_utf8_lossy(&line).into_owned()));
        }
    }
}

/// Best-effort id recovery for error events on lines that failed request
/// validation but still parse as JSON (`{"op":"frobnicate","id":"x"}`).
fn salvage_id(line: &str) -> String {
    Json::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(|j| j.as_str().map(str::to_string)))
        .unwrap_or_default()
}

/// Serves one connection's request stream until EOF, a `shutdown` request,
/// or daemon shutdown. Returns `true` if a `shutdown` request arrived.
fn serve_connection<R: BufRead>(
    scheduler: &Scheduler,
    conn: u64,
    reader: &mut R,
    out: &OutputHandle,
    cancel_on_disconnect: bool,
) -> bool {
    let mut saw_shutdown = false;
    loop {
        if scheduler.is_shutdown() {
            break;
        }
        match read_bounded_line(reader) {
            Err(_) | Ok(LineOutcome::Eof) => break,
            Ok(LineOutcome::Oversized) => out.send_line(&error_event(
                "",
                &format!("request exceeds the {MAX_REQUEST_BYTES}-byte line limit"),
            )),
            Ok(LineOutcome::Line(line)) => {
                if line.trim().is_empty() {
                    continue;
                }
                match parse_request(&line) {
                    Ok(request) => {
                        let is_shutdown = matches!(request, Request::Shutdown { .. });
                        scheduler.submit(request, conn, out);
                        if is_shutdown {
                            saw_shutdown = true;
                            break;
                        }
                    }
                    Err(e) => out.send_line(&error_event(&salvage_id(&line), &e)),
                }
            }
        }
    }
    if cancel_on_disconnect {
        scheduler.disconnect(conn);
    }
    saw_shutdown
}

/// Serves the stdin/stdout transport: one connection, events on stdout.
/// On EOF the scheduler is drained (queued jobs finish and stream) before
/// returning; a `shutdown` request cancels instead.
pub fn run_stdin(scheduler: &Scheduler) {
    let stdin = std::io::stdin();
    let mut reader = stdin.lock();
    let out = OutputHandle::new(Box::new(std::io::stdout()));
    let saw_shutdown = serve_connection(scheduler, 0, &mut reader, &out, false);
    if !saw_shutdown {
        scheduler.drain();
    }
}

/// Generic socket accept loop: polls non-blocking accepts so daemon
/// shutdown is noticed within ~50 ms even with no new clients.
fn accept_loop<L, S>(scheduler: &Arc<Scheduler>, listener: &L, accept: fn(&L) -> std::io::Result<S>)
where
    S: Read + Write + Send + 'static,
    S: TryCloneStream,
{
    let mut handles = Vec::new();
    while !scheduler.is_shutdown() {
        match accept(listener) {
            Ok(stream) => {
                let conn = NEXT_CONN.fetch_add(1, Ordering::Relaxed);
                let Ok(write_half) = stream.try_clone_stream() else {
                    continue;
                };
                let out = OutputHandle::new(write_half);
                let scheduler = scheduler.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("presatd-conn-{conn}"))
                    .spawn(move || {
                        let mut reader = BufReader::new(stream);
                        serve_connection(&scheduler, conn, &mut reader, &out, true);
                    });
                if let Ok(h) = handle {
                    handles.push(h);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => break,
        }
    }
    for h in handles {
        let _ = h.join();
    }
}

/// A stream whose write half can be split off for the [`OutputHandle`].
trait TryCloneStream: Sized {
    fn try_clone_stream(&self) -> std::io::Result<Box<dyn Write + Send>>;
}

impl TryCloneStream for std::net::TcpStream {
    fn try_clone_stream(&self) -> std::io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

#[cfg(unix)]
impl TryCloneStream for std::os::unix::net::UnixStream {
    fn try_clone_stream(&self) -> std::io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(self.try_clone()?))
    }
}

/// Serves the TCP transport until a `shutdown` request arrives.
pub fn run_tcp(scheduler: &Arc<Scheduler>, addr: &str) -> Result<(), String> {
    let listener =
        TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr:?}: {e}"))?;
    // Announce the actual address (clients asking for port 0 need it).
    if let Ok(local) = listener.local_addr() {
        eprintln!("presatd: listening on {local}");
    }
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set {addr:?} non-blocking: {e}"))?;
    accept_loop(scheduler, &listener, |l: &TcpListener| {
        l.accept().map(|(s, _)| s)
    });
    Ok(())
}

/// Serves the Unix-socket transport until a `shutdown` request arrives.
/// A stale socket file at `path` is replaced; the file is removed on exit.
#[cfg(unix)]
pub fn run_unix(scheduler: &Arc<Scheduler>, path: &str) -> Result<(), String> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener =
        UnixListener::bind(path).map_err(|e| format!("cannot bind {path:?}: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("cannot set {path:?} non-blocking: {e}"))?;
    accept_loop(scheduler, &listener, |l: &UnixListener| {
        l.accept().map(|(s, _)| s)
    });
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_reader_splits_lines_and_rejects_oversize() {
        let text = "short\n".to_string() + &"x".repeat(MAX_REQUEST_BYTES + 10) + "\nafter\n";
        let mut reader = BufReader::new(text.as_bytes());
        assert!(matches!(
            read_bounded_line(&mut reader),
            Ok(LineOutcome::Line(l)) if l == "short"
        ));
        assert!(matches!(
            read_bounded_line(&mut reader),
            Ok(LineOutcome::Oversized)
        ));
        assert!(matches!(
            read_bounded_line(&mut reader),
            Ok(LineOutcome::Line(l)) if l == "after"
        ));
        assert!(matches!(read_bounded_line(&mut reader), Ok(LineOutcome::Eof)));
    }

    #[test]
    fn unterminated_trailing_line_is_still_delivered() {
        let mut reader = BufReader::new("no newline".as_bytes());
        assert!(matches!(
            read_bounded_line(&mut reader),
            Ok(LineOutcome::Line(l)) if l == "no newline"
        ));
    }

    #[test]
    fn salvage_id_recovers_ids_from_rejected_requests() {
        assert_eq!(salvage_id(r#"{"op":"frobnicate","id":"x7"}"#), "x7");
        assert_eq!(salvage_id("{"), "");
        assert_eq!(salvage_id(r#"{"op":"solve"}"#), "");
    }
}
