//! `presatd` — a multi-tenant all-SAT / preimage service daemon.
//!
//! A long-running process that accepts `solve`, `allsat`, `preimage`, and
//! `reach` jobs over a line-delimited JSON protocol (stdin, TCP, or a Unix
//! socket), multiplexes named tenant sessions across a hand-rolled worker
//! pool, and schedules every job as budgeted slices: each quantum of
//! conflicts a job spends sends it to the back of the round-robin queue,
//! so a heavy tenant's fixed point cannot starve a small tenant's query.
//!
//! The layering:
//!
//! * [`json`] — a dependency-free JSON reader for untrusted request lines.
//! * [`protocol`] — request parsing/validation and response event shapes.
//! * [`job`] — one request as a resumable slice state machine, built on
//!   [`presat_sat::Budget`] quanta, [`presat_sat::CancelToken`], the
//!   persistent [`presat_allsat::IncrementalAllSat`] enumerator, and the
//!   [`presat_preimage::ReachDriver`] fixed-point stepper.
//! * [`scheduler`] — the worker pool, fairness queue, shared
//!   [`presat_sat::BudgetPool`], admission control, per-session counters.
//! * [`server`] — the transports and the request-line size guard.
//!
//! Sliced results are bit-identical to one-shot `presat` CLI runs: every
//! job accumulates its verified solutions in a canonical hash-consed
//! solution graph whose cube extraction depends only on the solution
//! *set*, never on how slices interleaved.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod json;
pub mod output;
pub mod protocol;
pub mod scheduler;
pub mod server;

pub use job::{Job, SliceOutcome, SliceReport};
pub use output::OutputHandle;
pub use protocol::{parse_request, Request, RequestLimits, MAX_REQUEST_BYTES};
pub use scheduler::{Config, Scheduler};
