//! The multi-tenant slice scheduler: a hand-rolled worker pool that
//! round-robins budgeted quanta across every live job.
//!
//! Jobs never hold a worker for longer than one slice
//! ([`crate::job::Job::run_slice`]): a job whose slice ends with work left
//! goes to the back of the ready queue, so a heavy tenant's `reach` shares
//! the pool fairly with a small tenant's `allsat` — the small job finishes
//! while the heavy one is still slicing. Per-request deadlines and
//! cancellation stop individual jobs; a shared [`BudgetPool`] (from
//! `--global-conflict-budget`) bounds the whole fleet's conflict spend; and
//! admission control refuses *new sessions* once the summed live
//! solver-arena bytes cross `--max-arena-bytes`.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

use presat_allsat::{effective_jobs, Budget, CancelToken};
use presat_obs::{JsonObject, PreimageCounters, Stats};
use presat_sat::BudgetPool;

use crate::job::{Job, SliceOutcome};
use crate::output::OutputHandle;
use crate::protocol::{accepted_event, error_event, ok_event, Request};

/// Daemon-wide scheduling knobs (CLI flags of `presatd`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Worker threads (`0` = auto-detect).
    pub jobs: usize,
    /// Conflict quantum per slice — the fairness granularity.
    pub slice_conflicts: u64,
    /// Admission ceiling: reject new sessions once the summed live
    /// solver-arena bytes reach this (`None` = no ceiling).
    pub max_arena_bytes: Option<u64>,
    /// Fleet-wide conflict pot shared by every job (`None` = unlimited).
    pub global_conflict_budget: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            jobs: 0,
            slice_conflicts: 20_000,
            max_arena_bytes: None,
            global_conflict_budget: None,
        }
    }
}

/// Book-keeping for one live (queued or checked-out) job.
struct LiveJob {
    session: String,
    conn: u64,
    request_id: String,
    cancel: CancelToken,
    /// Last observed solver-arena bytes (admission gauge).
    arena_bytes: u64,
    /// Last observed cumulative counters (stats while checked out).
    counters: PreimageCounters,
}

#[derive(Default)]
struct SessionInfo {
    /// Counters of this session's *completed* jobs; live jobs are added on
    /// top at stats time.
    base: PreimageCounters,
}

#[derive(Default)]
struct State {
    /// Ready queue of job keys, round-robin order.
    queue: VecDeque<u64>,
    /// Job slots; `None` while a worker has the job checked out.
    slots: HashMap<u64, Option<Job>>,
    /// Live-job book-keeping (survives checkout).
    live: HashMap<u64, LiveJob>,
    /// `(conn, request id) → key` for `cancel`.
    index: HashMap<(u64, String), u64>,
    /// Every session ever seen, with completed-job counters.
    sessions: BTreeMap<String, SessionInfo>,
    next_key: u64,
    shutdown: bool,
}

struct Shared {
    config: Config,
    pool: Option<BudgetPool>,
    state: Mutex<State>,
    /// Signaled when the ready queue grows or shutdown begins.
    work: Condvar,
    /// Signaled when a job completes (drain waits here).
    idle: Condvar,
}

/// Recover from a poisoned lock instead of cascading panics across the
/// worker pool — the protected state is kept consistent by construction.
fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The scheduler handle: submit requests, cancel, drain, shut down.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Scheduler {
    /// Starts the worker pool.
    pub fn new(config: Config) -> Scheduler {
        let pool = config
            .global_conflict_budget
            .and_then(|n| BudgetPool::from_budget(&Budget::unlimited().with_conflicts(n)));
        let workers = effective_jobs(config.jobs);
        let shared = Arc::new(Shared {
            config,
            pool,
            state: Mutex::new(State::default()),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("presatd-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn scheduler worker")
            })
            .collect();
        Scheduler {
            shared,
            workers: handles,
        }
    }

    /// Handles one parsed request from connection `conn`, emitting every
    /// response event on `out`. Job ops are admitted (or rejected) and
    /// queued; `stats`/`cancel`/`shutdown` are answered inline.
    pub fn submit(&self, request: Request, conn: u64, out: &OutputHandle) {
        match request {
            Request::Stats { id } => out.send_line(&self.stats_event(&id)),
            Request::Cancel { id, job } => {
                let st = lock(&self.shared);
                match st.index.get(&(conn, job.clone())) {
                    Some(key) => {
                        if let Some(live) = st.live.get(key) {
                            live.cancel.cancel();
                        }
                        drop(st);
                        out.send_line(&ok_event(&id, "cancel"));
                    }
                    None => {
                        drop(st);
                        out.send_line(&error_event(
                            &id,
                            &format!("cancel: no running job {job:?} on this connection"),
                        ));
                    }
                }
            }
            Request::Shutdown { id } => {
                out.send_line(&ok_event(&id, "shutdown"));
                self.begin_shutdown();
            }
            job_request => self.submit_job(job_request, conn, out),
        }
    }

    fn submit_job(&self, request: Request, conn: u64, out: &OutputHandle) {
        let id = request.id().to_string();
        let op = request.op();
        // Admission control, before the (possibly expensive) job build: a
        // *new* session is refused while the live fleet already holds too
        // much solver arena. Existing sessions may keep submitting — their
        // footprint is already accounted.
        {
            let st = lock(&self.shared);
            if st.shutdown {
                out.send_line(&error_event(&id, "daemon is shutting down"));
                return;
            }
            if let Some(ceiling) = self.shared.config.max_arena_bytes {
                let session = match &request {
                    Request::Solve { session, .. }
                    | Request::AllSat { session, .. }
                    | Request::Preimage { session, .. }
                    | Request::Reach { session, .. } => session.as_str(),
                    _ => "default",
                };
                let is_new = !st.sessions.contains_key(session);
                let live_total: u64 = st.live.values().map(|l| l.arena_bytes).sum();
                if is_new && live_total >= ceiling {
                    out.send_line(&error_event(
                        &id,
                        &format!(
                            "admission rejected: new session {session:?} refused while \
                             {live_total} live arena bytes \u{2265} --max-arena-bytes {ceiling}; \
                             retry when capacity frees or submit under an existing session"
                        ),
                    ));
                    return;
                }
            }
        }
        let job = match Job::new(request, conn, out.clone()) {
            Ok(job) => job,
            Err(e) => {
                out.send_line(&error_event(&id, &e));
                return;
            }
        };
        out.send_line(&accepted_event(&id, op, job.session_name()));
        let mut st = lock(&self.shared);
        let key = st.next_key;
        st.next_key += 1;
        st.sessions.entry(job.session_name().to_string()).or_default();
        st.live.insert(
            key,
            LiveJob {
                session: job.session_name().to_string(),
                conn,
                request_id: job.id().to_string(),
                cancel: job.cancel_token(),
                arena_bytes: job.arena_bytes(),
                counters: job.counters(),
            },
        );
        st.index.insert((conn, id), key);
        st.slots.insert(key, Some(job));
        st.queue.push_back(key);
        drop(st);
        self.shared.work.notify_one();
    }

    /// The `stats` answer: one event carrying a per-session snapshot array
    /// (completed jobs' counters plus every live job's current counters).
    fn stats_event(&self, id: &str) -> String {
        let st = lock(&self.shared);
        let mut rows: Vec<String> = Vec::new();
        for (name, info) in &st.sessions {
            let mut counters = info.base;
            let mut live_jobs = 0u64;
            for live in st.live.values() {
                if live.session == *name {
                    counters.absorb(&live.counters);
                    live_jobs += 1;
                }
            }
            let snapshot = Stats::from_preimage("presatd", &counters).to_json_named(name);
            // Splice the live-job count and the session's accumulated
            // result-set size into the per-session row. `result_cubes` is
            // the gauge refreshed from each live job's accumulator graph,
            // so it grows while a sliced job is still running.
            let mut row = JsonObject::new();
            row.field_raw("snapshot", &snapshot)
                .field_u64("live_jobs", live_jobs)
                .field_u64("result_cubes", counters.result_cubes);
            rows.push(row.finish());
        }
        drop(st);
        let mut o = JsonObject::new();
        o.field_str("id", id).field_str("event", "stats").field_raw(
            "sessions",
            &format!("[{}]", rows.join(",")),
        );
        o.finish()
    }

    /// Cancels every live job belonging to `conn` (its client went away).
    pub fn disconnect(&self, conn: u64) {
        let st = lock(&self.shared);
        for live in st.live.values() {
            if live.conn == conn {
                live.cancel.cancel();
            }
        }
    }

    /// `true` once `shutdown` has been requested.
    pub fn is_shutdown(&self) -> bool {
        lock(&self.shared).shutdown
    }

    /// Blocks until no live jobs remain (queued or checked out).
    pub fn drain(&self) {
        let mut st = lock(&self.shared);
        while !st.live.is_empty() {
            st = self
                .shared
                .idle
                .wait(st)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Starts shutdown: stop admitting, cancel everything, wake workers.
    pub fn begin_shutdown(&self) {
        let st = lock(&self.shared);
        if st.shutdown {
            return;
        }
        let mut st = st;
        st.shutdown = true;
        for live in st.live.values() {
            live.cancel.cancel();
        }
        drop(st);
        self.shared.work.notify_all();
        self.shared.idle.notify_all();
    }

    /// Shuts down and joins the worker pool (cancelled jobs each finish
    /// their terminal slice first).
    pub fn join(mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        // Check out the next ready job.
        let (key, mut job) = {
            let mut st = lock(shared);
            loop {
                if let Some(key) = st.queue.pop_front() {
                    match st.slots.get_mut(&key).and_then(|slot| slot.take()) {
                        Some(job) => break (key, job),
                        // Slot vanished (completed elsewhere) — keep going.
                        None => continue,
                    }
                }
                if st.shutdown {
                    return;
                }
                st = shared
                    .work
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        // One quantum outside the lock: other workers keep slicing other
        // jobs, submissions keep landing.
        let report = job.run_slice(shared.config.slice_conflicts, shared.pool.as_ref());
        let mut st = lock(shared);
        match report.outcome {
            SliceOutcome::Continue => {
                if let Some(live) = st.live.get_mut(&key) {
                    live.arena_bytes = report.arena_bytes;
                    live.counters = job.counters();
                }
                st.slots.insert(key, Some(job));
                st.queue.push_back(key);
                drop(st);
                shared.work.notify_one();
            }
            SliceOutcome::Done => {
                let counters = job.counters();
                st.sessions
                    .entry(job.session_name().to_string())
                    .or_default()
                    .base
                    .absorb(&counters);
                st.slots.remove(&key);
                if let Some(live) = st.live.remove(&key) {
                    st.index.remove(&(live.conn, live.request_id));
                }
                drop(st);
                shared.idle.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_request;
    use std::io::Write;
    use std::sync::{Arc, Mutex};
    use std::time::{Duration, Instant};

    fn capture() -> (OutputHandle, Arc<Mutex<Vec<u8>>>) {
        #[derive(Clone)]
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl Write for Sink {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().expect("sink lock").extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        (OutputHandle::new(Box::new(Sink(buf.clone()))), buf)
    }

    fn lines(buf: &Arc<Mutex<Vec<u8>>>) -> Vec<String> {
        String::from_utf8(buf.lock().expect("sink lock").clone())
            .expect("utf8")
            .lines()
            .map(str::to_string)
            .collect()
    }

    fn wait_for(buf: &Arc<Mutex<Vec<u8>>>, needle: &str) -> Vec<String> {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let ls = lines(buf);
            if ls.iter().any(|l| l.contains(needle)) {
                return ls;
            }
            assert!(Instant::now() < deadline, "timed out waiting for {needle}: {ls:?}");
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    fn submit(sched: &Scheduler, out: &OutputHandle, conn: u64, line: &str) {
        let req = parse_request(line).expect("request parses");
        sched.submit(req, conn, out);
    }

    #[test]
    fn two_tenants_share_the_pool_and_both_finish() {
        // A 1-conflict quantum forces heavy interleaving between tenants.
        let sched = Scheduler::new(Config {
            jobs: 2,
            slice_conflicts: 1,
            ..Config::default()
        });
        let (out, buf) = capture();
        submit(
            &sched,
            &out,
            1,
            r#"{"op":"reach","id":"heavy","session":"big","circuit":"INPUT(a)\nOUTPUT(y)\ns0 = DFF(n0)\ns1 = DFF(n1)\ns2 = DFF(n2)\nn0 = NOT(s0)\nc0 = AND(s0, a)\nn1 = XOR(s1, c0)\nc1 = AND(s1, c0)\nn2 = XOR(s2, c1)\ny = AND(s2, s1)\n","target":"0b000"}"#,
        );
        submit(
            &sched,
            &out,
            1,
            r#"{"op":"allsat","id":"small","session":"tiny","cnf":"p cnf 2 1\n1 2 0\n","project":2}"#,
        );
        wait_for(&buf, r#""id":"small","event":"done""#);
        wait_for(&buf, r#""id":"heavy","event":"done""#);
        let all = lines(&buf);
        let heavy_done = all
            .iter()
            .find(|l| l.contains(r#""id":"heavy","event":"done""#))
            .expect("heavy done");
        assert!(heavy_done.contains(r#""converged":true"#), "{heavy_done}");
        // Both sessions show up in stats with their counters.
        let (sout, sbuf) = capture();
        submit(&sched, &sout, 1, r#"{"op":"stats","id":"m"}"#);
        let stats = wait_for(&sbuf, r#""event":"stats""#);
        let row = stats
            .iter()
            .find(|l| l.contains(r#""event":"stats""#))
            .expect("stats row");
        assert!(row.contains(r#""session":"big""#), "{row}");
        assert!(row.contains(r#""session":"tiny""#), "{row}");
        sched.join();
    }

    #[test]
    fn admission_control_rejects_new_sessions_over_the_ceiling() {
        let sched = Scheduler::new(Config {
            jobs: 1,
            slice_conflicts: 1,
            max_arena_bytes: Some(1),
            ..Config::default()
        });
        let (out, buf) = capture();
        // First session is admitted (nothing live yet)…
        submit(
            &sched,
            &out,
            7,
            r#"{"op":"reach","id":"r1","session":"one","circuit":"INPUT(a)\nOUTPUT(y)\ns0 = DFF(n0)\ns1 = DFF(n1)\ns2 = DFF(n2)\ns3 = DFF(n3)\nn0 = NOT(s0)\nc0 = AND(s0, a)\nn1 = XOR(s1, c0)\nc1 = AND(s1, c0)\nn2 = XOR(s2, c1)\nc2 = AND(s2, c1)\nn3 = XOR(s3, c2)\ny = AND(s3, s2)\n","target":"0b0000"}"#,
        );
        wait_for(&buf, r#""event":"accepted""#);
        // …then a *new* session bounces off the 1-byte ceiling while the
        // first job's arena is live. Poll: admission reads the live gauge,
        // which needs at least one slice to be visible.
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut attempt = 0u64;
        loop {
            // A fresh session name per attempt: only *new* sessions are
            // subject to the admission ceiling.
            attempt += 1;
            let (out2, buf2) = capture();
            submit(
                &sched,
                &out2,
                8,
                &format!(
                    r#"{{"op":"solve","id":"r2","session":"two-{attempt}","cnf":"p cnf 1 1\n1 0\n"}}"#
                ),
            );
            let ls = lines(&buf2);
            if ls.iter().any(|l| l.contains("admission rejected")) {
                let msg = ls
                    .iter()
                    .find(|l| l.contains("admission rejected"))
                    .expect("rejection");
                assert!(msg.contains("--max-arena-bytes 1"), "{msg}");
                break;
            }
            // The solve may have been admitted before the gauge rose (or
            // after the reach finished) — that's legal; retry until the
            // rejection window is observed or the heavy job is done.
            if lines(&buf)
                .iter()
                .any(|l| l.contains(r#""id":"r1","event":"done""#))
            {
                // Heavy job finished before we caught the window; the
                // ceiling can no longer trigger. Accept the pass.
                break;
            }
            assert!(Instant::now() < deadline, "no rejection observed");
            std::thread::sleep(Duration::from_millis(2));
        }
        sched.join();
    }

    #[test]
    fn cancel_targets_one_connection_and_unknown_jobs_error() {
        let sched = Scheduler::new(Config {
            jobs: 1,
            slice_conflicts: 1,
            ..Config::default()
        });
        let (out, buf) = capture();
        submit(
            &sched,
            &out,
            3,
            r#"{"op":"reach","id":"victim","circuit":"INPUT(a)\nOUTPUT(y)\ns0 = DFF(n0)\ns1 = DFF(n1)\ns2 = DFF(n2)\nn0 = NOT(s0)\nc0 = AND(s0, a)\nn1 = XOR(s1, c0)\nc1 = AND(s1, c0)\nn2 = XOR(s2, c1)\ny = AND(s2, s1)\n","target":"0b000"}"#,
        );
        wait_for(&buf, r#""event":"accepted""#);
        // Wrong connection: the job is not visible there.
        let (out2, buf2) = capture();
        submit(&sched, &out2, 4, r#"{"op":"cancel","id":"c0","job":"victim"}"#);
        let ls = wait_for(&buf2, r#""event":"error""#);
        assert!(
            ls.iter().any(|l| l.contains("no running job")),
            "{ls:?}"
        );
        // Right connection: cancelled (or already complete — both legal).
        submit(&sched, &out, 3, r#"{"op":"cancel","id":"c1","job":"victim"}"#);
        let ls = lines(&buf);
        assert!(
            ls.iter().any(|l| {
                l.contains(r#""id":"c1","event":"ok""#) || l.contains(r#""id":"c1","event":"error""#)
            }),
            "{ls:?}"
        );
        sched.drain();
        sched.join();
    }
}
