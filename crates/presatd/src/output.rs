//! Shared, connection-scoped event writers.
//!
//! Every job holds a clone of its connection's [`OutputHandle`]; worker
//! threads emit newline-JSON events through it concurrently. A write error
//! (client went away mid-stream) marks the handle dead: later events are
//! silently dropped — the job itself is cancelled by the transport layer,
//! this just keeps in-flight slices from erroring — and the daemon carries
//! on serving everyone else.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A cloneable, thread-safe newline-JSON event sink.
#[derive(Clone)]
pub struct OutputHandle {
    inner: Arc<Inner>,
}

struct Inner {
    writer: Mutex<Box<dyn Write + Send>>,
    dead: AtomicBool,
}

impl OutputHandle {
    /// Wraps a writer (stdout, a TCP stream, a Unix stream…).
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        OutputHandle {
            inner: Arc::new(Inner {
                writer: Mutex::new(writer),
                dead: AtomicBool::new(false),
            }),
        }
    }

    /// Sends one event line (the newline is appended here). Best-effort:
    /// a failed write marks the handle dead and later sends are dropped.
    pub fn send_line(&self, line: &str) {
        if self.inner.dead.load(Ordering::Relaxed) {
            return;
        }
        let Ok(mut w) = self.inner.writer.lock() else {
            // A panic while holding the lock poisons it; treat the stream
            // as gone rather than propagate.
            self.inner.dead.store(true, Ordering::Relaxed);
            return;
        };
        let ok = w
            .write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush())
            .is_ok();
        if !ok {
            self.inner.dead.store(true, Ordering::Relaxed);
        }
    }

    /// `true` once a write has failed (the client disconnected).
    pub fn is_dead(&self) -> bool {
        self.inner.dead.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FailAfter {
        n: usize,
    }
    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.n == 0 {
                return Err(std::io::Error::other("gone"));
            }
            self.n -= 1;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_failure_marks_the_handle_dead() {
        let h = OutputHandle::new(Box::new(FailAfter { n: 2 }));
        h.send_line("one"); // line + newline = 2 writes
        assert!(!h.is_dead());
        h.send_line("two");
        assert!(h.is_dead());
        h.send_line("three"); // silently dropped
    }
}
