//! A minimal hand-rolled JSON *parser* for the daemon protocol.
//!
//! `presat-obs` ships the workspace's JSON writer and validator; requests
//! arriving over the wire additionally need a tree. This parser is
//! deliberately small — objects, arrays, strings (with escapes, including
//! surrogate pairs), numbers, booleans, null — and hardened for untrusted
//! input: a nesting-depth cap instead of unbounded recursion, and every
//! malformed byte is a `Result::Err` with an offset, never a panic.

use std::collections::BTreeMap;

/// Maximum nesting depth of arrays/objects a request may use. Deep enough
/// for any sane request; shallow enough that recursion cannot blow the
/// stack on `[[[[…`.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers above 2^53 lose precision; the protocol's
    /// budget fields saturate rather than reject).
    Num(f64),
    /// A string, escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is irrelevant to the protocol, so a sorted map
    /// keeps lookups simple.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON value spanning the whole input (surrounding
    /// whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.b.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Member `key` of an object (`None` for other kinds or absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer
    /// (values beyond `u64::MAX` saturate).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => {
                Some(if *n >= u64::MAX as f64 { u64::MAX } else { *n as u64 })
            }
            _ => None,
        }
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        match self.b.get(self.pos) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(format!("unexpected byte {c:?} at {}", self.pos)),
            None => Err(format!("unexpected end of input at {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // '{'
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.b.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.b.get(self.pos) != Some(&b':') {
                return Err(format!("expected ':' at byte {}", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            map.insert(key, v);
            self.skip_ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.b.get(self.pos) != Some(&b'"') {
            return Err(format!("expected string at byte {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.b.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.b.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow to form one scalar value.
                                if self.b.get(self.pos) == Some(&b'\\')
                                    && self.b.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xdc00..0xe000).contains(&lo) {
                                        return Err("unpaired surrogate escape".into());
                                    }
                                    let scalar =
                                        0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                    char::from_u32(scalar)
                                } else {
                                    return Err("unpaired surrogate escape".into());
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err("invalid \\u escape".into()),
                            }
                            // hex4 advanced past the digits already.
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(&c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos))
                }
                Some(_) => {
                    // Multi-byte UTF-8 passes through verbatim (input was a
                    // &str, so it is valid UTF-8 already).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .b
                        .get(self.pos)
                        .is_some_and(|&c| c >= 0x80 && c & 0xc0 == 0x80)
                    {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.b[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(format!("invalid UTF-8 at byte {start}")),
                    }
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = self
                .b
                .get(self.pos)
                .and_then(|&c| (c as char).to_digit(16))
                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.b.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut digits = false;
        while self.b.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
            digits = true;
        }
        if !digits {
            return Err(format!("expected digits at byte {start}"));
        }
        if self.b.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            let from = self.pos;
            while self.b.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
            if self.pos == from {
                return Err(format!("expected fraction digits at byte {start}"));
            }
        }
        if matches!(self.b.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.b.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let from = self.pos;
            while self.b.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
            if self.pos == from {
                return Err(format!("expected exponent digits at byte {start}"));
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

/// Escapes `s` for embedding inside a JSON string literal (the writer-side
/// twin of the parser above, for hand-built fragments like cube arrays).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = Json::parse(r#" {"op":"allsat","project":3,"ok":true,"x":null,"a":[1,2.5,-3e2],"s":"hi\n"} "#)
            .expect("valid JSON");
        assert_eq!(v.get("op").and_then(Json::as_str), Some("allsat"));
        assert_eq!(v.get("project").and_then(Json::as_usize), Some(3));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
        match v.get("a") {
            Some(Json::Arr(items)) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(v.get("s").and_then(Json::as_str), Some("hi\n"));
    }

    #[test]
    fn rejects_malformed_inputs_without_panicking() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1 2]",
            "\"unterminated",
            "tru",
            "1.",
            "1e",
            "{\"a\" 1}",
            "\"\\u12\"",
            "\"\\ud800\"",
            "{} extra",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn depth_cap_rejects_bombs() {
        let bomb = "[".repeat(100_000);
        let err = Json::parse(&bomb).expect_err("must reject");
        assert!(err.contains("nesting"), "{err}");
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse(r#""\ud83d\ude00""#).expect("valid pair");
        assert_eq!(v.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn u64_accessor_wants_nonnegative_integers() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(1e30).as_u64(), Some(u64::MAX));
        assert_eq!(Json::Str("5".into()).as_u64(), None);
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let original = "line\none \"two\" \\ three\ttab";
        let quoted = format!("\"{}\"", escape(original));
        assert_eq!(Json::parse(&quoted).expect("valid").as_str(), Some(original));
    }
}
