//! Workspace-wide randomized property tests: the invariants that tie the
//! crates together. Formerly proptest-based; now a seeded-iteration
//! harness on the in-tree [`SplitMix64`] PRNG so the suite builds with
//! zero external dependencies. Every case is reproducible: the failure
//! message carries the iteration index, and the generators are pure
//! functions of the seed.

use std::collections::BTreeMap;

use presat::allsat::{
    AllSatEngine, AllSatProblem, BlockingAllSat, MinimizedBlockingAllSat, SolutionGraph,
    SuccessDrivenAllSat,
};
use presat::bdd::BddManager;
use presat::logic::rng::SplitMix64;
use presat::logic::{truth_table, Cnf, Cube, CubeSet, Lit, Var};
use presat::sat::{SolveResult, Solver};

/// A random CNF over `nv` variables with up to `max_clauses` clauses of
/// width 1–4 (duplicate literals allowed, like the old proptest strategy).
fn random_cnf(rng: &mut SplitMix64, nv: usize, max_clauses: usize) -> Cnf {
    let mut cnf = Cnf::new(nv);
    for _ in 0..rng.gen_range(0..max_clauses + 1) {
        let width = rng.gen_range(1..5);
        let lits: Vec<Lit> = (0..width)
            .map(|_| Lit::with_phase(Var::new(rng.gen_range(0..nv)), rng.gen_bool(0.5)))
            .collect();
        cnf.add_clause(lits);
    }
    cnf
}

/// A random cube set over `nv` variables with up to `max_cubes` cubes.
fn random_cube_set(rng: &mut SplitMix64, nv: usize, max_cubes: usize) -> CubeSet {
    (0..rng.gen_range(0..max_cubes + 1))
        .map(|_| {
            let mut phases = BTreeMap::new();
            for _ in 0..rng.gen_range(0..nv + 1) {
                phases.insert(rng.gen_range(0..nv), rng.gen_bool(0.5));
            }
            Cube::from_lits(
                phases
                    .into_iter()
                    .map(|(v, pos)| Lit::with_phase(Var::new(v), pos)),
            )
            .expect("btree keys are distinct")
        })
        .collect()
}

const CASES: usize = 64;

/// The CDCL solver agrees with the truth table, and SAT answers carry
/// genuine models.
#[test]
fn solver_agrees_with_truth_table() {
    let mut rng = SplitMix64::seed_from_u64(0x5001);
    for case in 0..CASES {
        let cnf = random_cnf(&mut rng, 8, 24);
        let expected = truth_table::is_satisfiable(&cnf);
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve() {
            SolveResult::Sat(model) => {
                assert!(expected, "case {case}: solver SAT but oracle UNSAT");
                assert!(cnf.is_satisfied_by(&model), "case {case}: bogus model");
            }
            SolveResult::Unsat => assert!(!expected, "case {case}: solver UNSAT but oracle SAT"),
            SolveResult::Unknown(r) => panic!("case {case}: unbudgeted solve returned {r:?}"),
        }
    }
}

/// DIMACS round-trips losslessly.
#[test]
fn dimacs_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0x5002);
    for case in 0..CASES {
        let cnf = random_cnf(&mut rng, 10, 20);
        let text = presat::logic::dimacs::write(&cnf);
        let back = presat::logic::dimacs::parse(&text).expect("own output parses");
        assert_eq!(back, cnf, "case {case}");
    }
}

/// BDD `from_cnf` is a faithful function representation.
#[test]
fn bdd_matches_truth_table() {
    let mut rng = SplitMix64::seed_from_u64(0x5003);
    for case in 0..CASES {
        let cnf = random_cnf(&mut rng, 7, 16);
        let mut m = BddManager::new(7);
        let f = m.from_cnf(&cnf);
        assert_eq!(
            m.satcount(f, 7) as u64,
            truth_table::count_models(&cnf),
            "case {case}"
        );
    }
}

/// All three all-SAT engines compute the same projection as the
/// truth-table oracle.
#[test]
fn allsat_engines_agree_with_oracle() {
    let mut rng = SplitMix64::seed_from_u64(0x5004);
    for case in 0..CASES {
        let cnf = random_cnf(&mut rng, 7, 14);
        let important: Vec<Var> = Var::range(4).collect();
        let problem = AllSatProblem::new(cnf.clone(), important.clone());
        let expect = truth_table::project_models_set(&cnf, &important);
        let results = [
            BlockingAllSat::new().enumerate(&problem).cubes,
            MinimizedBlockingAllSat::new().enumerate(&problem).cubes,
            SuccessDrivenAllSat::new().enumerate(&problem).cubes,
        ];
        for r in results {
            assert!(r.semantically_eq(&expect, &important), "case {case}");
        }
    }
}

/// The solution graph round-trips cube sets and counts exactly.
#[test]
fn solution_graph_round_trip() {
    let mut rng = SplitMix64::seed_from_u64(0x5005);
    for case in 0..CASES {
        let set = random_cube_set(&mut rng, 6, 10);
        let vars: Vec<Var> = Var::range(6).collect();
        let (g, root) = SolutionGraph::from_cube_set(&set, &vars);
        assert_eq!(g.minterm_count(root), set.minterm_count(6), "case {case}");
        let back = g.to_cube_set(root, &vars);
        assert!(back.semantically_eq(&set, &vars), "case {case}");
    }
}

/// Graph set algebra matches bit-level set algebra.
#[test]
fn solution_graph_algebra() {
    let mut rng = SplitMix64::seed_from_u64(0x5006);
    for case in 0..CASES {
        let a = random_cube_set(&mut rng, 5, 8);
        let b = random_cube_set(&mut rng, 5, 8);
        let vars: Vec<Var> = Var::range(5).collect();
        let (mut g, na) = SolutionGraph::from_cube_set(&a, &vars);
        let nb = g.add_cube_set(&b, &vars);
        let nu = g.union(na, nb);
        let ni = g.intersect(na, nb);
        let nd = g.diff(na, nb);
        for bits in 0..32u64 {
            let ia = g.contains_bits(na, bits);
            let ib = g.contains_bits(nb, bits);
            assert_eq!(g.contains_bits(nu, bits), ia || ib, "case {case} ∪ {bits}");
            assert_eq!(g.contains_bits(ni, bits), ia && ib, "case {case} ∩ {bits}");
            assert_eq!(g.contains_bits(nd, bits), ia && !ib, "case {case} ∖ {bits}");
        }
    }
}

/// Lifting always yields a sound enlargement.
#[test]
fn lifting_is_sound() {
    let mut rng = SplitMix64::seed_from_u64(0x5007);
    for case in 0..CASES {
        let cnf = random_cnf(&mut rng, 7, 12);
        let important: Vec<Var> = Var::range(4).collect();
        let projection = truth_table::project_models_set(&cnf, &important);
        for model in truth_table::enumerate_models(&cnf).into_iter().take(8) {
            let cube = presat::allsat::lift_cube(&cnf, &model, &important);
            assert!(cube.subsumes(&model.project(&important)), "case {case}");
            assert!(projection.covers_cube(&cube, &important), "case {case}");
        }
    }
}

/// BDD Boolean algebra laws hold (via canonicity).
#[test]
fn bdd_laws() {
    let mut rng = SplitMix64::seed_from_u64(0x5008);
    for case in 0..CASES {
        let cnf_a = random_cnf(&mut rng, 6, 8);
        let cnf_b = random_cnf(&mut rng, 6, 8);
        let mut m = BddManager::new(6);
        let a = m.from_cnf(&cnf_a);
        let b = m.from_cnf(&cnf_b);
        // De Morgan
        let and_ab = m.and(a, b);
        let lhs = m.not(and_ab);
        let na = m.not(a);
        let nb = m.not(b);
        let rhs = m.or(na, nb);
        assert_eq!(lhs, rhs, "case {case}: De Morgan");
        // Absorption
        let or_ab = m.or(a, b);
        assert_eq!(m.and(a, or_ab), a, "case {case}: absorption");
        // Double negation
        let nna = m.not(na);
        assert_eq!(nna, a, "case {case}: double negation");
        // Quantification: ∃x.f ≥ f (implication is tautological)
        let e = m.exists(a, &[Var::new(0)]);
        let imp = m.implies(a, e);
        assert!(imp.is_true(), "case {case}: ∃ enlarges");
    }
}

/// Incremental solving under assumptions equals solving the strengthened
/// formula.
#[test]
fn assumptions_equal_units() {
    let mut rng = SplitMix64::seed_from_u64(0x5009);
    for case in 0..CASES {
        let cnf = random_cnf(&mut rng, 7, 14);
        let mut assum = BTreeMap::new();
        for _ in 0..rng.gen_range(0..3) {
            assum.insert(rng.gen_range(0..7usize), rng.gen_bool(0.5));
        }
        let assumptions: Vec<Lit> = assum
            .iter()
            .map(|(&v, &p)| Lit::with_phase(Var::new(v), p))
            .collect();
        let mut strengthened = cnf.clone();
        for &l in &assumptions {
            strengthened.add_unit(l);
        }
        let expected = truth_table::is_satisfiable(&strengthened);
        let mut solver = Solver::from_cnf(&cnf);
        let got = solver.solve_with_assumptions(&assumptions);
        assert_eq!(got.is_sat(), expected, "case {case}");
    }
}
