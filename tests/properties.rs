//! Workspace-wide property-based tests (proptest): the invariants that tie
//! the crates together.

use proptest::prelude::*;

use presat::allsat::{
    AllSatEngine, AllSatProblem, BlockingAllSat, MinimizedBlockingAllSat, SolutionGraph,
    SuccessDrivenAllSat,
};
use presat::bdd::BddManager;
use presat::logic::{truth_table, Cnf, Cube, CubeSet, Lit, Var};
use presat::sat::{SolveResult, Solver};

/// Strategy: a random CNF over `nv` variables with up to `max_clauses`
/// clauses of width 1–4.
fn arb_cnf(nv: usize, max_clauses: usize) -> impl Strategy<Value = Cnf> {
    prop::collection::vec(
        prop::collection::vec((0..nv, any::<bool>()), 1..=4),
        0..=max_clauses,
    )
    .prop_map(move |clauses| {
        let mut cnf = Cnf::new(nv);
        for c in clauses {
            cnf.add_clause(
                c.into_iter()
                    .map(|(v, pos)| Lit::with_phase(Var::new(v), pos)),
            );
        }
        cnf
    })
}

/// Strategy: a random cube set over `nv` variables.
fn arb_cube_set(nv: usize, max_cubes: usize) -> impl Strategy<Value = CubeSet> {
    prop::collection::vec(
        prop::collection::btree_map(0..nv, any::<bool>(), 0..=nv),
        0..=max_cubes,
    )
    .prop_map(|cubes| {
        cubes
            .into_iter()
            .map(|m| {
                Cube::from_lits(
                    m.into_iter()
                        .map(|(v, pos)| Lit::with_phase(Var::new(v), pos)),
                )
                .expect("btree keys are distinct")
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The CDCL solver agrees with the truth table, and SAT answers carry
    /// genuine models.
    #[test]
    fn solver_agrees_with_truth_table(cnf in arb_cnf(8, 24)) {
        let expected = truth_table::is_satisfiable(&cnf);
        let mut solver = Solver::from_cnf(&cnf);
        match solver.solve() {
            SolveResult::Sat(model) => {
                prop_assert!(expected);
                prop_assert!(cnf.is_satisfied_by(&model));
            }
            SolveResult::Unsat => prop_assert!(!expected),
        }
    }

    /// DIMACS round-trips losslessly.
    #[test]
    fn dimacs_round_trip(cnf in arb_cnf(10, 20)) {
        let text = presat::logic::dimacs::write(&cnf);
        let back = presat::logic::dimacs::parse(&text).expect("own output parses");
        prop_assert_eq!(back, cnf);
    }

    /// BDD `from_cnf` is a faithful function representation.
    #[test]
    fn bdd_matches_truth_table(cnf in arb_cnf(7, 16)) {
        let mut m = BddManager::new(7);
        let f = m.from_cnf(&cnf);
        prop_assert_eq!(
            m.satcount(f, 7) as u64,
            truth_table::count_models(&cnf)
        );
    }

    /// All three all-SAT engines compute the same projection as the
    /// truth-table oracle.
    #[test]
    fn allsat_engines_agree_with_oracle(cnf in arb_cnf(7, 14)) {
        let important: Vec<Var> = Var::range(4).collect();
        let problem = AllSatProblem::new(cnf.clone(), important.clone());
        let expect = truth_table::project_models_set(&cnf, &important);
        let results = [
            BlockingAllSat::new().enumerate(&problem).cubes,
            MinimizedBlockingAllSat::new().enumerate(&problem).cubes,
            SuccessDrivenAllSat::new().enumerate(&problem).cubes,
        ];
        for r in results {
            prop_assert!(r.semantically_eq(&expect, &important));
        }
    }

    /// The solution graph round-trips cube sets and counts exactly.
    #[test]
    fn solution_graph_round_trip(set in arb_cube_set(6, 10)) {
        let vars: Vec<Var> = Var::range(6).collect();
        let (g, root) = SolutionGraph::from_cube_set(&set, &vars);
        prop_assert_eq!(g.minterm_count(root), set.minterm_count(6));
        let back = g.to_cube_set(root, &vars);
        prop_assert!(back.semantically_eq(&set, &vars));
    }

    /// Graph set algebra matches bit-level set algebra.
    #[test]
    fn solution_graph_algebra(
        a in arb_cube_set(5, 8),
        b in arb_cube_set(5, 8),
    ) {
        let vars: Vec<Var> = Var::range(5).collect();
        let (mut g, na) = SolutionGraph::from_cube_set(&a, &vars);
        let nb = g.add_cube_set(&b, &vars);
        let nu = g.union(na, nb);
        let ni = g.intersect(na, nb);
        let nd = g.diff(na, nb);
        for bits in 0..32u64 {
            let ia = g.contains_bits(na, bits);
            let ib = g.contains_bits(nb, bits);
            prop_assert_eq!(g.contains_bits(nu, bits), ia || ib);
            prop_assert_eq!(g.contains_bits(ni, bits), ia && ib);
            prop_assert_eq!(g.contains_bits(nd, bits), ia && !ib);
        }
    }

    /// Lifting always yields a sound enlargement.
    #[test]
    fn lifting_is_sound(cnf in arb_cnf(7, 12)) {
        let important: Vec<Var> = Var::range(4).collect();
        let projection = truth_table::project_models_set(&cnf, &important);
        for model in truth_table::enumerate_models(&cnf).into_iter().take(8) {
            let cube = presat::allsat::lift_cube(&cnf, &model, &important);
            prop_assert!(cube.subsumes(&model.project(&important)));
            prop_assert!(projection.covers_cube(&cube, &important));
        }
    }

    /// BDD Boolean algebra laws hold (via canonicity).
    #[test]
    fn bdd_laws(cnf_a in arb_cnf(6, 8), cnf_b in arb_cnf(6, 8)) {
        let mut m = BddManager::new(6);
        let a = m.from_cnf(&cnf_a);
        let b = m.from_cnf(&cnf_b);
        // De Morgan
        let and_ab = m.and(a, b);
        let lhs = m.not(and_ab);
        let na = m.not(a);
        let nb = m.not(b);
        let rhs = m.or(na, nb);
        prop_assert_eq!(lhs, rhs);
        // Absorption
        let or_ab = m.or(a, b);
        prop_assert_eq!(m.and(a, or_ab), a);
        // Double negation
        let nna = m.not(na);
        prop_assert_eq!(nna, a);
        // Quantification: ∃x.f ≥ f (implication is tautological)
        let e = m.exists(a, &[Var::new(0)]);
        let imp = m.implies(a, e);
        prop_assert!(imp.is_true());
    }

    /// Incremental solving under assumptions equals solving the
    /// strengthened formula.
    #[test]
    fn assumptions_equal_units(
        cnf in arb_cnf(7, 14),
        assum in prop::collection::btree_map(0..7usize, any::<bool>(), 0..3),
    ) {
        let assumptions: Vec<Lit> = assum
            .iter()
            .map(|(&v, &p)| Lit::with_phase(Var::new(v), p))
            .collect();
        let mut strengthened = cnf.clone();
        for &l in &assumptions {
            strengthened.add_unit(l);
        }
        let expected = truth_table::is_satisfiable(&strengthened);
        let mut solver = Solver::from_cnf(&cnf);
        let got = solver.solve_with_assumptions(&assumptions);
        prop_assert_eq!(got.is_sat(), expected);
    }
}
