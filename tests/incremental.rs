//! Bit-compatibility suite for incremental preimage sessions.
//!
//! The contract under test: `backward_reach` with `incremental: true` (one
//! persistent solver session across the whole fixed point) produces a
//! [`ReachReport`] *identical* to the rebuild-per-iteration path — the same
//! reached cube set in the same order, the same per-iteration rows
//! (frontier cubes, new states, cumulative states), the same convergence
//! verdict — on every generator circuit and the embedded benchmarks, at
//! both 1 and 4 worker threads. Timing and work counters may differ (that
//! is the point of the optimisation); results may not.

use presat::circuit::{embedded, generators, Circuit};
use presat::preimage::{backward_reach, oracle, ReachOptions, ReachReport, SatPreimage, StateSet};

/// Whether the suite-wide oracle test runs the incremental or the rebuild
/// path, from `PRESAT_TEST_INCREMENTAL` (default on; `0` = rebuild).
/// `scripts/verify.sh` runs the suite in both modes.
fn env_incremental() -> bool {
    std::env::var("PRESAT_TEST_INCREMENTAL")
        .map(|v| v != "0")
        .unwrap_or(true)
}

fn reach(circuit: &Circuit, target: &StateSet, jobs: usize, incremental: bool) -> ReachReport {
    backward_reach(
        &SatPreimage::success_driven().with_jobs(jobs),
        circuit,
        target,
        ReachOptions {
            incremental,
            ..ReachOptions::default()
        },
    )
}

/// Asserts that the incremental and rebuild reports agree on everything
/// the report promises: reached set (exact cubes), cardinality, rows, and
/// convergence.
fn assert_reports_match(circuit: &Circuit, target: &StateSet) {
    for jobs in [1usize, 4] {
        let rebuild = reach(circuit, target, jobs, false);
        let session = reach(circuit, target, jobs, true);
        let label = format!("{} (target {target}, jobs {jobs})", circuit.name());
        assert_eq!(session.converged, rebuild.converged, "converged: {label}");
        assert_eq!(
            session.reached_states, rebuild.reached_states,
            "reached_states: {label}"
        );
        assert_eq!(
            session.reached.cubes(),
            rebuild.reached.cubes(),
            "reached cube set: {label}"
        );
        assert_eq!(
            session.iterations.len(),
            rebuild.iterations.len(),
            "iteration count: {label}"
        );
        for (s, r) in session.iterations.iter().zip(&rebuild.iterations) {
            assert_eq!(s.iteration, r.iteration, "row order: {label}");
            assert_eq!(
                s.frontier_cubes, r.frontier_cubes,
                "frontier cubes at iter {}: {label}",
                s.iteration
            );
            assert_eq!(
                s.new_states, r.new_states,
                "new states at iter {}: {label}",
                s.iteration
            );
            assert_eq!(
                s.reached_states, r.reached_states,
                "cumulative states at iter {}: {label}",
                s.iteration
            );
        }
    }
}

#[test]
fn counters_match_rebuild() {
    assert_reports_match(
        &generators::counter(3, false),
        &StateSet::from_state_bits(0, 3),
    );
    assert_reports_match(
        &generators::counter(4, true),
        &StateSet::from_state_bits(9, 4),
    );
}

#[test]
fn lfsr_matches_rebuild() {
    assert_reports_match(&generators::lfsr(4), &StateSet::from_state_bits(1, 4));
}

#[test]
fn shift_register_matches_rebuild() {
    assert_reports_match(
        &generators::shift_register(4),
        &StateSet::from_partial(&[(3, true)]),
    );
}

#[test]
fn parity_matches_rebuild() {
    assert_reports_match(
        &generators::parity(3),
        &StateSet::from_partial(&[(3, true)]),
    );
}

#[test]
fn arbiter_matches_rebuild() {
    let c = generators::round_robin_arbiter(2);
    assert_reports_match(&c, &StateSet::from_partial(&[(2, true)]));
    assert_reports_match(&c, &StateSet::from_state_bits(0b0101, 4));
}

#[test]
fn comparator_matches_rebuild() {
    assert_reports_match(
        &generators::comparator(3),
        &StateSet::from_partial(&[(3, true)]),
    );
}

#[test]
fn random_dags_match_rebuild() {
    for seed in 0..4 {
        let c = generators::random_dag(3, 4, 25, seed);
        assert_reports_match(&c, &StateSet::from_state_bits(seed % 16, 4));
        assert_reports_match(&c, &StateSet::from_partial(&[(1, false)]));
    }
}

#[test]
fn embedded_benchmarks_match_rebuild() {
    let s27 = embedded::s27().unwrap();
    for bits in [0u64, 2, 5] {
        assert_reports_match(&s27, &StateSet::from_state_bits(bits, 3));
    }
    let ctl2 = embedded::ctl2().unwrap();
    let n = ctl2.num_latches();
    assert_reports_match(&ctl2, &StateSet::from_state_bits(0, n));
    assert_reports_match(&ctl2, &StateSet::from_partial(&[(0, true)]));
}

#[test]
fn multi_cube_targets_match_rebuild() {
    // Multi-cube targets exercise the selector-per-cube activation groups.
    let c = generators::counter(4, false);
    let t = StateSet::from_state_bits(3, 4).union(&StateSet::from_state_bits(12, 4));
    assert_reports_match(&c, &t);
}

#[test]
fn empty_target_matches_rebuild() {
    assert_reports_match(&generators::counter(3, false), &StateSet::empty());
}

#[test]
fn iteration_cap_matches_rebuild() {
    let c = generators::counter(4, false);
    let t = StateSet::from_state_bits(0, 4);
    for jobs in [1usize, 4] {
        let rebuild = backward_reach(
            &SatPreimage::success_driven().with_jobs(jobs),
            &c,
            &t,
            ReachOptions {
                max_iterations: Some(3),
                incremental: false,
                ..ReachOptions::default()
            },
        );
        let session = backward_reach(
            &SatPreimage::success_driven().with_jobs(jobs),
            &c,
            &t,
            ReachOptions {
                max_iterations: Some(3),
                incremental: true,
                ..ReachOptions::default()
            },
        );
        assert!(!session.converged);
        assert_eq!(session.reached.cubes(), rebuild.reached.cubes());
        assert_eq!(session.reached_states, rebuild.reached_states);
    }
}

#[test]
fn simplified_frontiers_match_rebuild() {
    let c = generators::round_robin_arbiter(2);
    let t = StateSet::from_partial(&[(2, true)]);
    for jobs in [1usize, 4] {
        let rebuild = backward_reach(
            &SatPreimage::success_driven().with_jobs(jobs),
            &c,
            &t,
            ReachOptions {
                simplify_frontier: true,
                incremental: false,
                ..ReachOptions::default()
            },
        );
        let session = backward_reach(
            &SatPreimage::success_driven().with_jobs(jobs),
            &c,
            &t,
            ReachOptions {
                simplify_frontier: true,
                incremental: true,
                ..ReachOptions::default()
            },
        );
        assert_eq!(session.reached.cubes(), rebuild.reached.cubes());
        assert_eq!(session.iterations.len(), rebuild.iterations.len());
    }
}

#[test]
fn incremental_sessions_report_reuse_counters() {
    // counter(3) reaching 0 runs 8 iterations: 7 of them reuse the session
    // encoding and each allocates exactly one activation literal.
    let report = reach(
        &generators::counter(3, false),
        &StateSet::from_state_bits(0, 3),
        1,
        true,
    );
    assert_eq!(report.stats.iterations, 8);
    assert_eq!(report.stats.activation_lits, 8);
    assert_eq!(report.stats.encodings_reused, 7);
    // The rebuild path never reports session counters.
    let rebuild = reach(
        &generators::counter(3, false),
        &StateSet::from_state_bits(0, 3),
        1,
        false,
    );
    assert_eq!(rebuild.stats.activation_lits, 0);
    assert_eq!(rebuild.stats.encodings_reused, 0);
}

/// Suite-wide oracle check honouring `PRESAT_TEST_INCREMENTAL`, so
/// `scripts/verify.sh` exercises the ground-truth comparison in both
/// modes.
#[test]
fn env_selected_mode_agrees_with_oracle() {
    let incremental = env_incremental();
    for (circuit, target) in [
        (
            generators::counter(3, false),
            StateSet::from_state_bits(5, 3),
        ),
        (generators::lfsr(4), StateSet::from_state_bits(1, 4)),
        (
            generators::round_robin_arbiter(2),
            StateSet::from_partial(&[(2, true)]),
        ),
        (generators::parity(3), StateSet::from_partial(&[(3, true)])),
    ] {
        let n = circuit.num_latches();
        let expect = oracle::backward_reachable_bits(&circuit, &target);
        let report = reach(&circuit, &target, 1, incremental);
        assert!(report.converged);
        assert_eq!(
            report.reached_states,
            expect.len() as u128,
            "{} (incremental={incremental})",
            circuit.name()
        );
        for &b in &expect {
            assert!(report.reached.contains_bits(b, n));
        }
    }
}
