//! Bit-compatibility suite for incremental preimage sessions.
//!
//! The contract under test: `backward_reach` with `incremental: true` (one
//! persistent solver session across the whole fixed point) produces a
//! [`ReachReport`] *identical* to the rebuild-per-iteration path — the same
//! reached cube set in the same order, the same per-iteration rows
//! (frontier cubes, new states, cumulative states), the same convergence
//! verdict — on every generator circuit and the embedded benchmarks, at
//! both 1 and 4 worker threads. Timing and work counters may differ (that
//! is the point of the optimisation); results may not.

use presat::circuit::{embedded, generators, Circuit};
use presat::preimage::{backward_reach, oracle, ReachOptions, ReachReport, SatPreimage, StateSet};

/// Whether the suite-wide oracle test runs the incremental or the rebuild
/// path, from `PRESAT_TEST_INCREMENTAL` (default on; `0` = rebuild).
/// `scripts/verify.sh` runs the suite in both modes.
fn env_incremental() -> bool {
    std::env::var("PRESAT_TEST_INCREMENTAL")
        .map(|v| v != "0")
        .unwrap_or(true)
}

/// Whether sessions inprocess at retirement boundaries, from
/// `PRESAT_TEST_INPROCESS` (default on; `0` = off). Inprocessing is
/// equivalence-preserving, so every identity this suite asserts must hold
/// in both modes; `scripts/verify.sh` runs the suite twice to prove it.
fn env_inprocess() -> bool {
    std::env::var("PRESAT_TEST_INPROCESS")
        .map(|v| v != "0")
        .unwrap_or(true)
}

fn reach(circuit: &Circuit, target: &StateSet, jobs: usize, incremental: bool) -> ReachReport {
    backward_reach(
        &SatPreimage::success_driven().with_jobs(jobs),
        circuit,
        target,
        ReachOptions {
            incremental,
            inprocess: env_inprocess(),
            ..ReachOptions::default()
        },
    )
}

/// Asserts that the incremental and rebuild reports agree on everything
/// the report promises: reached set (exact cubes), cardinality, rows, and
/// convergence.
fn assert_reports_match(circuit: &Circuit, target: &StateSet) {
    for jobs in [1usize, 4] {
        let rebuild = reach(circuit, target, jobs, false);
        let session = reach(circuit, target, jobs, true);
        let label = format!("{} (target {target}, jobs {jobs})", circuit.name());
        assert_eq!(session.converged, rebuild.converged, "converged: {label}");
        assert_eq!(
            session.reached_states, rebuild.reached_states,
            "reached_states: {label}"
        );
        assert_eq!(
            session.reached.cubes(),
            rebuild.reached.cubes(),
            "reached cube set: {label}"
        );
        assert_eq!(
            session.iterations.len(),
            rebuild.iterations.len(),
            "iteration count: {label}"
        );
        for (s, r) in session.iterations.iter().zip(&rebuild.iterations) {
            assert_eq!(s.iteration, r.iteration, "row order: {label}");
            assert_eq!(
                s.frontier_cubes, r.frontier_cubes,
                "frontier cubes at iter {}: {label}",
                s.iteration
            );
            assert_eq!(
                s.new_states, r.new_states,
                "new states at iter {}: {label}",
                s.iteration
            );
            assert_eq!(
                s.reached_states, r.reached_states,
                "cumulative states at iter {}: {label}",
                s.iteration
            );
        }
    }
}

#[test]
fn counters_match_rebuild() {
    assert_reports_match(
        &generators::counter(3, false),
        &StateSet::from_state_bits(0, 3),
    );
    assert_reports_match(
        &generators::counter(4, true),
        &StateSet::from_state_bits(9, 4),
    );
}

#[test]
fn lfsr_matches_rebuild() {
    assert_reports_match(&generators::lfsr(4), &StateSet::from_state_bits(1, 4));
}

#[test]
fn shift_register_matches_rebuild() {
    assert_reports_match(
        &generators::shift_register(4),
        &StateSet::from_partial(&[(3, true)]),
    );
}

#[test]
fn parity_matches_rebuild() {
    assert_reports_match(
        &generators::parity(3),
        &StateSet::from_partial(&[(3, true)]),
    );
}

#[test]
fn arbiter_matches_rebuild() {
    let c = generators::round_robin_arbiter(2);
    assert_reports_match(&c, &StateSet::from_partial(&[(2, true)]));
    assert_reports_match(&c, &StateSet::from_state_bits(0b0101, 4));
}

#[test]
fn comparator_matches_rebuild() {
    assert_reports_match(
        &generators::comparator(3),
        &StateSet::from_partial(&[(3, true)]),
    );
}

#[test]
fn random_dags_match_rebuild() {
    for seed in 0..4 {
        let c = generators::random_dag(3, 4, 25, seed);
        assert_reports_match(&c, &StateSet::from_state_bits(seed % 16, 4));
        assert_reports_match(&c, &StateSet::from_partial(&[(1, false)]));
    }
}

#[test]
fn embedded_benchmarks_match_rebuild() {
    let s27 = embedded::s27().unwrap();
    for bits in [0u64, 2, 5] {
        assert_reports_match(&s27, &StateSet::from_state_bits(bits, 3));
    }
    let ctl2 = embedded::ctl2().unwrap();
    let n = ctl2.num_latches();
    assert_reports_match(&ctl2, &StateSet::from_state_bits(0, n));
    assert_reports_match(&ctl2, &StateSet::from_partial(&[(0, true)]));
}

#[test]
fn multi_cube_targets_match_rebuild() {
    // Multi-cube targets exercise the selector-per-cube activation groups.
    let c = generators::counter(4, false);
    let t = StateSet::from_state_bits(3, 4).union(&StateSet::from_state_bits(12, 4));
    assert_reports_match(&c, &t);
}

#[test]
fn empty_target_matches_rebuild() {
    assert_reports_match(&generators::counter(3, false), &StateSet::empty());
}

#[test]
fn iteration_cap_matches_rebuild() {
    let c = generators::counter(4, false);
    let t = StateSet::from_state_bits(0, 4);
    for jobs in [1usize, 4] {
        let rebuild = backward_reach(
            &SatPreimage::success_driven().with_jobs(jobs),
            &c,
            &t,
            ReachOptions {
                max_iterations: Some(3),
                incremental: false,
                ..ReachOptions::default()
            },
        );
        let session = backward_reach(
            &SatPreimage::success_driven().with_jobs(jobs),
            &c,
            &t,
            ReachOptions {
                max_iterations: Some(3),
                incremental: true,
                ..ReachOptions::default()
            },
        );
        assert!(!session.converged);
        assert_eq!(session.reached.cubes(), rebuild.reached.cubes());
        assert_eq!(session.reached_states, rebuild.reached_states);
    }
}

#[test]
fn simplified_frontiers_match_rebuild() {
    let c = generators::round_robin_arbiter(2);
    let t = StateSet::from_partial(&[(2, true)]);
    for jobs in [1usize, 4] {
        let rebuild = backward_reach(
            &SatPreimage::success_driven().with_jobs(jobs),
            &c,
            &t,
            ReachOptions {
                simplify_frontier: true,
                incremental: false,
                ..ReachOptions::default()
            },
        );
        let session = backward_reach(
            &SatPreimage::success_driven().with_jobs(jobs),
            &c,
            &t,
            ReachOptions {
                simplify_frontier: true,
                incremental: true,
                ..ReachOptions::default()
            },
        );
        assert_eq!(session.reached.cubes(), rebuild.reached.cubes());
        assert_eq!(session.iterations.len(), rebuild.iterations.len());
    }
}

#[test]
fn incremental_sessions_report_reuse_counters() {
    // counter(3) reaching 0 runs 8 iterations: 7 of them reuse the session
    // encoding and each allocates exactly one activation literal.
    let report = reach(
        &generators::counter(3, false),
        &StateSet::from_state_bits(0, 3),
        1,
        true,
    );
    assert_eq!(report.stats.iterations, 8);
    assert_eq!(report.stats.activation_lits, 8);
    assert_eq!(report.stats.encodings_reused, 7);
    // The rebuild path never reports session counters.
    let rebuild = reach(
        &generators::counter(3, false),
        &StateSet::from_state_bits(0, 3),
        1,
        false,
    );
    assert_eq!(rebuild.stats.activation_lits, 0);
    assert_eq!(rebuild.stats.encodings_reused, 0);
}

/// Deep-fixed-point memory bound: a long-lived incremental session that
/// adds and retires a clause group per round must *not* grow its clause
/// arena monotonically — garbage collection has to reclaim retired groups
/// (and the learnt clauses derived from them), which is observable through
/// the new `arena_bytes` / `db_compactions` / `clauses_reclaimed` counters.
#[test]
fn incremental_session_arena_stays_bounded_across_deep_fixed_point() {
    use presat::allsat::{EnumLimits, IncrementalAllSat, SuccessDrivenAllSat};
    use presat::logic::rng::SplitMix64;
    use presat::logic::{Cnf, Lit, Var};

    let n = 6;
    let mut rng = SplitMix64::seed_from_u64(2024);
    let rand_lit =
        |rng: &mut SplitMix64| Lit::with_phase(Var::new(rng.gen_range(0..n)), rng.gen_bool(0.5));
    let mut base = Cnf::new(n);
    for _ in 0..8 {
        let c: Vec<Lit> = (0..3).map(|_| rand_lit(&mut rng)).collect();
        base.add_clause(c);
    }
    let important: Vec<Var> = Var::range(n).collect();
    let mut session = IncrementalAllSat::new(base, important, SuccessDrivenAllSat::new(), 1);

    let rounds = 40;
    let clauses_per_round = 6;
    let mut total_group_bytes = 0u64;
    let mut compactions = 0u64;
    let mut reclaimed = 0u64;
    let mut last_arena_bytes = 0u64;
    for _ in 0..rounds {
        let act = Lit::pos(session.add_var());
        for _ in 0..clauses_per_round {
            let mut c = vec![!act];
            for _ in 0..3 {
                c.push(rand_lit(&mut rng));
            }
            // header word + 4 literal words, 4 bytes each
            total_group_bytes += 4 * (1 + 4);
            session.add_clause(c);
        }
        let result = session.enumerate_limited(&[act], &EnumLimits::none(), &mut presat::obs::NullSink);
        assert!(result.complete, "unbudgeted enumeration must finish");
        compactions += result.stats.sat.db_compactions;
        reclaimed += result.stats.sat.clauses_reclaimed;
        last_arena_bytes = result.stats.sat.arena_bytes;
        session.retire(act);
    }
    assert!(compactions > 0, "GC never ran across {rounds} retirement rounds");
    assert!(reclaimed > 0, "GC ran but reclaimed nothing");
    assert!(last_arena_bytes > 0, "arena gauge never stamped");
    // Without GC the arena holds every group ever added (plus learnts); with
    // GC the resident size must stay well below the monotonic total.
    assert!(
        last_arena_bytes < total_group_bytes / 2,
        "arena grew monotonically: resident {last_arena_bytes} B vs {total_group_bytes} B of groups added"
    );
}

/// Chrono as a cold oracle for incremental sessions: after every round of
/// group-add / enumerate / retire, a from-scratch [`ChronoAllSat`] run on
/// the equivalent monolithic CNF (group clauses guarded by activation
/// units, retired groups forced off) must agree semantically with the
/// session's answer — and repeated chrono runs, including after
/// retirement, must be bit-identical.
#[test]
fn chrono_cold_oracle_pins_incremental_sessions() {
    use presat::allsat::{AllSatEngine, AllSatProblem, ChronoAllSat, EnumLimits, IncrementalAllSat, SuccessDrivenAllSat};
    use presat::logic::rng::SplitMix64;
    use presat::logic::{Cnf, Lit, Var};

    let n = 6;
    let mut rng = SplitMix64::seed_from_u64(0x1C7);
    let rand_lit =
        |rng: &mut SplitMix64| Lit::with_phase(Var::new(rng.gen_range(0..n)), rng.gen_bool(0.5));
    let mut base: Vec<Vec<Lit>> = Vec::new();
    for _ in 0..8 {
        base.push((0..3).map(|_| rand_lit(&mut rng)).collect());
    }
    let important: Vec<Var> = Var::range(n).collect();
    let mut base_cnf = Cnf::new(n);
    for c in &base {
        base_cnf.add_clause(c.clone());
    }
    let mut session =
        IncrementalAllSat::new(base_cnf, important.clone(), SuccessDrivenAllSat::new(), 1);

    // The cold mirror: every clause ever added, plus activation units.
    let mut group_clauses: Vec<Vec<Lit>> = Vec::new();
    let mut retired: Vec<Lit> = Vec::new();
    let mut num_vars = n;
    for round in 0..10 {
        let act = Lit::pos(session.add_var());
        num_vars += 1;
        for _ in 0..4 {
            let mut c = vec![!act];
            for _ in 0..3 {
                c.push(rand_lit(&mut rng));
            }
            group_clauses.push(c.clone());
            session.add_clause(c);
        }
        let got =
            session.enumerate_limited(&[act], &EnumLimits::none(), &mut presat::obs::NullSink);
        assert!(got.complete, "round {round}: session run incomplete");

        // Cold chrono run on the monolithic equivalent of this round.
        let mut cold = Cnf::new(num_vars);
        for c in base.iter().chain(group_clauses.iter()) {
            cold.add_clause(c.clone());
        }
        cold.add_clause(vec![act]);
        for &r in &retired {
            cold.add_clause(vec![!r]);
        }
        let problem = AllSatProblem::new(cold, important.clone());
        let a = ChronoAllSat::new().enumerate(&problem);
        let b = ChronoAllSat::new().enumerate(&problem);
        assert_eq!(
            a.cubes.cubes(),
            b.cubes.cubes(),
            "round {round}: chrono nondeterministic"
        );
        assert!(a.complete, "round {round}: cold chrono incomplete");
        assert_eq!(a.stats.blocking_clauses, 0, "round {round}");
        assert!(
            a.cubes.semantically_eq(&got.cubes, &important),
            "round {round}: cold chrono diverges from the incremental session"
        );
        retired.push(act);
        session.retire(act);
    }
}

/// Suite-wide oracle check honouring `PRESAT_TEST_INCREMENTAL`, so
/// `scripts/verify.sh` exercises the ground-truth comparison in both
/// modes.
#[test]
fn env_selected_mode_agrees_with_oracle() {
    let incremental = env_incremental();
    for (circuit, target) in [
        (
            generators::counter(3, false),
            StateSet::from_state_bits(5, 3),
        ),
        (generators::lfsr(4), StateSet::from_state_bits(1, 4)),
        (
            generators::round_robin_arbiter(2),
            StateSet::from_partial(&[(2, true)]),
        ),
        (generators::parity(3), StateSet::from_partial(&[(3, true)])),
    ] {
        let n = circuit.num_latches();
        let expect = oracle::backward_reachable_bits(&circuit, &target);
        let report = reach(&circuit, &target, 1, incremental);
        assert!(report.converged);
        assert_eq!(
            report.reached_states,
            expect.len() as u128,
            "{} (incremental={incremental})",
            circuit.name()
        );
        for &b in &expect {
            assert!(report.reached.contains_bits(b, n));
        }
    }
}
