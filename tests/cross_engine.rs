//! Cross-engine equivalence: every preimage engine must agree with the
//! exhaustive-simulation oracle on every circuit family small enough to
//! enumerate.

use presat::circuit::{embedded, generators, Circuit};
use presat::preimage::{oracle, BddPreimage, PreimageEngine, SatPreimage, StateSet};

fn engines() -> Vec<Box<dyn PreimageEngine>> {
    use presat::allsat::SignatureMode;
    vec![
        Box::new(SatPreimage::blocking()),
        Box::new(SatPreimage::min_blocking()),
        Box::new(SatPreimage::chrono()),
        Box::new(SatPreimage::success_driven()),
        Box::new(SatPreimage::success_driven_with(SignatureMode::Static, true)),
        Box::new(SatPreimage::success_driven_with(SignatureMode::None, true)),
        Box::new(SatPreimage::success_driven_with(SignatureMode::Dynamic, false)),
        Box::new(BddPreimage::substitution()),
        Box::new(BddPreimage::monolithic()),
    ]
}

fn check(circuit: &Circuit, target: &StateSet) {
    let n = circuit.num_latches();
    let expect = oracle::preimage(circuit, target);
    for engine in engines() {
        let got = engine.preimage(circuit, target);
        assert!(
            got.states.semantically_eq(&expect, n),
            "{} diverges from oracle on {} (target {target})",
            engine.name(),
            circuit.name(),
        );
    }
}

#[test]
fn counters() {
    for (n, en) in [(3, false), (4, false), (3, true), (4, true)] {
        let c = generators::counter(n, en);
        check(&c, &StateSet::from_state_bits(1, n));
        check(&c, &StateSet::from_partial(&[(n - 1, true)]));
    }
}

#[test]
fn shift_registers() {
    for n in [3, 5] {
        let c = generators::shift_register(n);
        check(&c, &StateSet::from_state_bits((1 << n) - 1, n));
        check(&c, &StateSet::from_partial(&[(0, true), (n - 1, false)]));
    }
}

#[test]
fn lfsrs() {
    for n in [4, 6] {
        let c = generators::lfsr(n);
        check(&c, &StateSet::from_state_bits(3, n));
        check(&c, &StateSet::from_partial(&[(1, true)]));
    }
}

#[test]
fn parity_circuits() {
    for n in [3, 4] {
        let c = generators::parity(n);
        check(&c, &StateSet::from_partial(&[(n, true)]));
        check(&c, &StateSet::from_partial(&[(n, false), (0, true)]));
    }
}

#[test]
fn arbiters() {
    let c = generators::round_robin_arbiter(3);
    check(&c, &StateSet::from_partial(&[(3, true)]));
    check(&c, &StateSet::from_state_bits(0b000111, 6));
}

#[test]
fn comparators() {
    for n in [2, 3] {
        let c = generators::comparator(n);
        check(&c, &StateSet::from_partial(&[(n, true)]));
    }
}

#[test]
fn embedded_netlists() {
    let s27 = embedded::s27().unwrap();
    for bits in 0..8 {
        check(&s27, &StateSet::from_state_bits(bits, 3));
    }
    let ctl2 = embedded::ctl2().unwrap();
    for bits in 0..4 {
        check(&ctl2, &StateSet::from_state_bits(bits, 2));
    }
}

#[test]
fn multi_cube_targets() {
    let c = generators::counter(4, true);
    let t = StateSet::from_state_bits(2, 4)
        .union(&StateSet::from_state_bits(9, 4))
        .union(&StateSet::from_partial(&[(3, true), (0, false)]));
    check(&c, &t);
}

#[test]
fn gray_and_johnson_counters() {
    let g = generators::gray_counter(4);
    check(&g, &StateSet::from_state_bits(0b1100, 4));
    check(&g, &StateSet::from_partial(&[(3, true)]));
    let j = generators::johnson_counter(4);
    check(&j, &StateSet::from_state_bits(0b0011, 4));
    check(&j, &StateSet::from_partial(&[(0, false), (3, true)]));
}

#[test]
fn traffic_and_fifo_controllers() {
    let t = generators::traffic_controller();
    check(&t, &StateSet::from_partial(&[(0, true), (2, true)])); // conflict set
    check(&t, &StateSet::from_state_bits(0, 4));
    let f = generators::fifo_controller(3);
    check(&f, &StateSet::from_partial(&[(3, true)])); // full flag
    check(&f, &StateSet::from_state_bits(0, 5));
}

#[test]
fn random_circuit_sweep() {
    for seed in 0..10 {
        let c = generators::random_dag(3, 4, 30, seed);
        check(&c, &StateSet::from_state_bits(seed % 16, 4));
        check(&c, &StateSet::from_partial(&[(2, seed % 2 == 0)]));
    }
}

/// The chrono engine never asserts a blocking clause: across every
/// generator family its `blocking_clauses` counter stays zero, its clause
/// database never grows past the encoding (`db_clauses_peak` equals the
/// problem clause count), and repeated runs are bit-identical.
#[test]
fn chrono_is_blocking_clause_free_and_deterministic() {
    let circuits = [
        generators::counter(4, true),
        generators::parity(4),
        generators::shift_register(4),
        generators::round_robin_arbiter(2),
        generators::lfsr(4),
    ];
    for c in &circuits {
        let t = StateSet::from_partial(&[(0, true)]);
        let a = SatPreimage::chrono().preimage(c, &t);
        let b = SatPreimage::chrono().preimage(c, &t);
        assert_eq!(a.states.cubes(), b.states.cubes(), "{}", c.name());
        assert_eq!(a.stats.allsat.blocking_clauses, 0, "{}", c.name());
        assert_eq!(
            a.stats.allsat.db_clauses_peak, a.stats.allsat.sat.problem_clauses,
            "{}: clause DB grew during chrono enumeration",
            c.name()
        );
        assert_eq!(a.stats.allsat.sat.learnt_clauses, 0, "{}", c.name());
    }
}

/// SAT and BDD preimages agree on 20 seeded random circuits, and every
/// run's counter snapshot serializes to well-formed JSON carrying the
/// engine's wall time.
#[test]
fn sat_and_bdd_agree_with_valid_json_stats() {
    use presat::obs::{json, Stats};
    for seed in 0..20u64 {
        let c = generators::random_dag(3, 4, 30, seed);
        let target = StateSet::from_state_bits(seed % 16, 4);
        let sat = SatPreimage::success_driven().preimage(&c, &target);
        let bdd = BddPreimage::substitution().preimage(&c, &target);
        assert!(
            sat.states.semantically_eq(&bdd.states, 4),
            "SAT and BDD preimages diverge on random_dag seed {seed}"
        );
        for (engine, result) in [("sat-success-driven", &sat), ("bdd-sub", &bdd)] {
            let stats = Stats::from_preimage(engine, &result.stats);
            let text = stats.to_json();
            json::validate(&text).unwrap_or_else(|e| panic!("seed {seed} {engine}: {e}\n{text}"));
            assert_eq!(
                json::extract_u64(&text, "result_cubes"),
                Some(result.stats.result_cubes),
                "seed {seed} {engine}"
            );
            assert!(stats.wall_time_ns > 0, "seed {seed} {engine}: no wall time");
        }
    }
}
