//! Environment-constrained preimages: restricting the primary inputs must
//! shrink the preimage to transitions the environment permits, identically
//! across SAT and BDD engines.

use presat::circuit::{generators, sim, Circuit};
use presat::logic::{Assignment, Cube, CubeSet, Lit, Var};
use presat::preimage::{BddPreimage, PreimageEngine, SatPreimage, StateSet};

/// Exhaustive oracle with an input filter.
fn oracle_constrained(
    circuit: &Circuit,
    target: &StateSet,
    env: &CubeSet,
) -> Vec<u64> {
    let n = circuit.num_latches();
    let m = circuit.num_inputs();
    let mut out: Vec<u64> = sim::enumerate_transitions(circuit)
        .into_iter()
        .filter(|&(_, w, next)| {
            env.contains_minterm(&Assignment::from_bits(w, m))
                && target.contains_bits(next, n)
        })
        .map(|(s, _, _)| s)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn check(circuit: &Circuit, target: &StateSet, env: &CubeSet) {
    let n = circuit.num_latches();
    let expect = oracle_constrained(circuit, target, env);
    let engines: Vec<Box<dyn PreimageEngine>> = vec![
        Box::new(SatPreimage::blocking().with_env(env.clone())),
        Box::new(SatPreimage::min_blocking().with_env(env.clone())),
        Box::new(SatPreimage::success_driven().with_env(env.clone())),
        Box::new(BddPreimage::substitution().with_env(env.clone())),
        Box::new(BddPreimage::monolithic().with_env(env.clone())),
    ];
    for engine in engines {
        let got = engine.preimage(circuit, target);
        for bits in 0..(1u64 << n) {
            assert_eq!(
                got.states.contains_bits(bits, n),
                expect.binary_search(&bits).is_ok(),
                "{} on {}: state {bits:b}",
                engine.name(),
                circuit.name()
            );
        }
    }
}

fn cube(lits: &[(usize, bool)]) -> Cube {
    Cube::from_lits(lits.iter().map(|&(v, p)| Lit::with_phase(Var::new(v), p))).unwrap()
}

#[test]
fn enable_forced_high_removes_self_loops() {
    // With enable pinned high, the enabled counter's self-loop (enable=0)
    // disappears: preimage of {9} is exactly {8}.
    let c = generators::counter(4, true);
    let env: CubeSet = [cube(&[(0, true)])].into_iter().collect();
    let t = StateSet::from_state_bits(9, 4);
    check(&c, &t, &env);
    let pre = SatPreimage::success_driven()
        .with_env(env)
        .preimage(&c, &t);
    assert_eq!(pre.states.minterm_count(4), 1);
    assert!(pre.states.contains_bits(8, 4));
}

#[test]
fn empty_environment_empties_the_preimage() {
    let c = generators::shift_register(4);
    let env = CubeSet::new();
    let pre = SatPreimage::success_driven()
        .with_env(env)
        .preimage(&c, &StateSet::from_partial(&[(3, true)]));
    assert!(pre.states.is_empty());
}

#[test]
fn one_hot_request_environment_on_arbiter() {
    // Only one requester may assert at a time.
    let c = generators::round_robin_arbiter(2);
    let env: CubeSet = [
        cube(&[(0, true), (1, false)]),
        cube(&[(0, false), (1, true)]),
        cube(&[(0, false), (1, false)]),
    ]
    .into_iter()
    .collect();
    check(&c, &StateSet::from_partial(&[(2, true)]), &env);
    check(&c, &StateSet::from_state_bits(0b0101, 4), &env);
}

#[test]
fn serial_input_pinned_on_shift_register() {
    let c = generators::shift_register(4);
    let env: CubeSet = [cube(&[(0, false)])].into_iter().collect();
    check(&c, &StateSet::from_state_bits(0b0001, 4), &env);
    // s0' = w = 0, so no state can reach a target requiring s0' = 1.
    let pre = SatPreimage::success_driven()
        .with_env(env)
        .preimage(&c, &StateSet::from_state_bits(0b0001, 4));
    assert!(pre.states.is_empty());
}

#[test]
fn multi_cube_environment_on_comparator() {
    let c = generators::comparator(2); // 4 inputs
    // B restricted to {00, 11}.
    let env: CubeSet = [
        cube(&[(2, false), (3, false)]),
        cube(&[(2, true), (3, true)]),
    ]
    .into_iter()
    .collect();
    check(&c, &StateSet::from_partial(&[(2, true)]), &env);
}

#[test]
fn free_environment_equals_no_environment() {
    let c = generators::parity(3);
    let t = StateSet::from_partial(&[(3, true)]);
    let free = SatPreimage::success_driven()
        .with_env(CubeSet::universe())
        .preimage(&c, &t);
    let none = SatPreimage::success_driven().preimage(&c, &t);
    assert!(free.states.semantically_eq(&none.states, 4));
}
