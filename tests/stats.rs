//! Counter coverage: the observability layer must report exact numbers on
//! instances small enough to know the answer by hand, and the event trace
//! must agree with the counters.

use presat::allsat::{AllSatEngine, AllSatProblem, BlockingAllSat, SuccessDrivenAllSat};
use presat::circuit::generators;
use presat::logic::{Cnf, Lit, Var};
use presat::obs::{json, Event, Stats, VecSink};
use presat::preimage::{
    backward_reach_with_sink, PreimageEngine, ReachOptions, SatPreimage, StateSet,
};

/// `v0 ↔ v1` over three variables: exactly 4 models (v2 free both ways).
fn four_solution_cnf() -> Cnf {
    let mut cnf = Cnf::new(3);
    let v0 = Lit::pos(Var::new(0));
    let v1 = Lit::pos(Var::new(1));
    cnf.add_clause([!v0, v1]);
    cnf.add_clause([v0, !v1]);
    cnf
}

#[test]
fn blocking_counters_on_known_instance() {
    let problem = AllSatProblem::new(four_solution_cnf(), Var::range(3).collect());
    let mut sink = VecSink::new();
    let result = BlockingAllSat::new().enumerate_with_sink(&problem, &mut sink);

    // 4 models over the full variable set → 4 minterm cubes, one blocking
    // clause each (the final UNSAT call adds none).
    assert_eq!(result.cubes.minterm_count(3), 4);
    assert_eq!(result.stats.cubes_emitted, 4);
    assert!(result.stats.blocking_clauses <= 4);
    assert!(result.stats.solver_calls >= 4);

    // The nested CDCL snapshot is populated (at least one solve ran and
    // propagated something).
    assert!(result.stats.sat.solves >= 1);
    assert!(result.stats.sat.propagations > 0);

    // The event trace agrees with the counters.
    assert_eq!(
        sink.count(|e| matches!(e, Event::Solution { .. })) as u64,
        result.stats.cubes_emitted
    );
    assert_eq!(
        sink.count(|e| matches!(e, Event::BlockingClause { .. })) as u64,
        result.stats.blocking_clauses
    );
}

#[test]
fn success_driven_counters_on_known_instance() {
    let problem = AllSatProblem::new(four_solution_cnf(), Var::range(3).collect());
    let mut sink = VecSink::new();
    let result = SuccessDrivenAllSat::new().enumerate_with_sink(&problem, &mut sink);

    assert_eq!(result.cubes.minterm_count(3), 4);
    // The success-driven engine never adds blocking clauses.
    assert_eq!(result.stats.blocking_clauses, 0);
    assert!(result.stats.graph_nodes > 0);
    assert_eq!(
        sink.count(|e| matches!(e, Event::Solution { .. })) as u64,
        result.stats.cubes_emitted
    );

    // Snapshot lifts the nested layers and serializes to valid JSON with
    // the solution count visible.
    let stats = Stats::from_allsat("success-driven", &result.stats);
    let text = stats.to_json();
    json::validate(&text).unwrap();
    assert_eq!(
        json::extract_u64(&text, "solutions"),
        Some(result.stats.cubes_emitted)
    );
    assert_eq!(json::extract_u64(&text, "blocking_clauses"), Some(0));
}

#[test]
fn preimage_counters_carry_all_layers() {
    // The only predecessor of 9 in a 4-bit counter is 8.
    let c = generators::counter(4, false);
    let target = StateSet::from_state_bits(9, 4);
    let result = SatPreimage::success_driven().preimage(&c, &target);

    assert_eq!(result.stats.iterations, 1);
    assert!(result.stats.wall_time_ns > 0);
    assert_eq!(result.stats.result_cubes, 1);
    // The nested all-SAT and CDCL snapshots rode along.
    assert!(result.stats.allsat.solver_calls > 0);
    assert!(result.stats.allsat.sat.solves > 0);

    let stats = Stats::from_preimage("sat-success-driven", &result.stats);
    assert_eq!(stats.sat, result.stats.allsat.sat);
    assert_eq!(stats.wall_time_ns, result.stats.wall_time_ns);
}

#[test]
fn reach_aggregates_counters_and_emits_iteration_events() {
    // Reaching state 0 of a 3-bit counter takes 8 iterations (7 + the
    // empty-frontier fixed-point check).
    let c = generators::counter(3, false);
    let mut sink = VecSink::new();
    let report = backward_reach_with_sink(
        &SatPreimage::success_driven(),
        &c,
        &StateSet::from_state_bits(0, 3),
        ReachOptions::default(),
        &mut sink,
    );

    assert!(report.converged);
    assert_eq!(report.stats.iterations, 8);
    assert!(report.stats.wall_time_ns > 0);
    // One ReachIteration event per fixed-point iteration, and the inner
    // preimage calls' events are forwarded through the same sink.
    assert_eq!(
        sink.count(|e| matches!(e, Event::ReachIteration { .. })) as u64,
        report.stats.iterations
    );
    assert!(sink.count(|e| matches!(e, Event::Solution { .. })) > 0);
    // Work counters are sums over iterations: at least one solver call per
    // non-empty frontier.
    assert!(report.stats.allsat.solver_calls >= 7);

    let text = Stats::from_preimage("sat-success-driven", &report.stats).to_json();
    json::validate(&text).unwrap();
    assert_eq!(json::extract_u64(&text, "iterations"), Some(8));
}

#[test]
fn clause_memory_counters_surface_in_json_and_csv() {
    // Full-width target: every cone is needed, but the arena gauge must
    // still report the resident clause memory of the run.
    let c = generators::counter(4, false);
    let result = SatPreimage::success_driven().preimage(&c, &StateSet::from_state_bits(9, 4));
    let text = Stats::from_preimage("sat-success-driven", &result.stats).to_json();
    json::validate(&text).unwrap();
    assert!(
        json::extract_u64(&text, "arena_bytes").unwrap() > 0,
        "arena gauge missing or zero: {text}"
    );
    assert_eq!(
        json::extract_u64(&text, "db_compactions"),
        Some(result.stats.allsat.sat.db_compactions)
    );
    assert_eq!(
        json::extract_u64(&text, "clauses_reclaimed"),
        Some(result.stats.allsat.sat.clauses_reclaimed)
    );
    assert_eq!(json::extract_u64(&text, "cones_skipped"), Some(0));

    // Single-latch target: bit 0 of a counter toggles on its own, so the
    // other next-state cones fall outside the cone of influence and the
    // skip count must surface in the JSON.
    let partial = SatPreimage::success_driven().preimage(&c, &StateSet::from_partial(&[(0, true)]));
    assert!(partial.stats.cones_skipped > 0);
    let text = Stats::from_preimage("sat-success-driven", &partial.stats).to_json();
    assert_eq!(
        json::extract_u64(&text, "cones_skipped"),
        Some(partial.stats.cones_skipped)
    );

    // The CSV schema names every new column.
    for col in [
        "sat_arena_bytes",
        "sat_db_compactions",
        "sat_clauses_reclaimed",
        "preimage_cones_skipped",
    ] {
        assert!(
            Stats::csv_header().contains(col),
            "csv header lacks {col}: {}",
            Stats::csv_header()
        );
    }
}

#[test]
fn csv_rows_align_with_header_for_every_engine() {
    let c = generators::counter(3, false);
    let target = StateSet::from_state_bits(2, 3);
    let header_width = Stats::csv_header().split(',').count();
    for engine in [
        Box::new(SatPreimage::blocking()) as Box<dyn PreimageEngine>,
        Box::new(SatPreimage::min_blocking()),
        Box::new(SatPreimage::success_driven()),
    ] {
        let result = engine.preimage(&c, &target);
        let row = Stats::from_preimage(engine.name(), &result.stats).to_csv_row();
        assert_eq!(row.split(',').count(), header_width, "{}", engine.name());
    }
}
