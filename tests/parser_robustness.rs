//! Fuzz-style robustness: the text parsers must return errors, never
//! panic, on arbitrary input — and must accept everything their writers
//! produce.

use proptest::prelude::*;

use presat::circuit::{aiger, bench, generators};
use presat::logic::dimacs;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes-as-text never panic any parser.
    #[test]
    fn parsers_never_panic_on_noise(text in "\\PC{0,200}") {
        let _ = dimacs::parse(&text);
        let _ = bench::parse(&text);
        let _ = aiger::parse(&text);
    }

    /// Structured-looking but malformed DIMACS never panics.
    #[test]
    fn dimacs_structured_noise(
        header in "p cnf [0-9]{1,3} [0-9]{1,3}",
        body in prop::collection::vec(-20i32..20, 0..40),
    ) {
        let mut text = header;
        text.push('\n');
        for v in body {
            text.push_str(&format!("{v} "));
        }
        text.push('\n');
        let _ = dimacs::parse(&text);
    }

    /// Structured-looking but malformed AIGER never panics.
    #[test]
    fn aiger_structured_noise(
        m in 0usize..20, i in 0usize..5, l in 0usize..5,
        o in 0usize..5, a in 0usize..5,
        body in prop::collection::vec(
            prop::collection::vec(0u64..64, 1..4), 0..16),
    ) {
        let mut text = format!("aag {m} {i} {l} {o} {a}\n");
        for row in body {
            let words: Vec<String> = row.iter().map(u64::to_string).collect();
            text.push_str(&words.join(" "));
            text.push('\n');
        }
        let _ = aiger::parse(&text);
    }

    /// Structured-looking but malformed BENCH never panics.
    #[test]
    fn bench_structured_noise(
        lines in prop::collection::vec(
            prop_oneof![
                "INPUT\\([a-z]{1,3}\\)",
                "OUTPUT\\([a-z]{1,3}\\)",
                "[a-z]{1,3} = (AND|OR|NOT|DFF|XOR|FROB)\\([a-z]{1,3}(, [a-z]{1,3})?\\)",
                "[a-z ]{0,10}",
            ],
            0..12,
        ),
    ) {
        let text = lines.join("\n");
        let _ = bench::parse(&text);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random sequential circuits survive write→parse round trips in both
    /// netlist formats with transition-exact behaviour.
    #[test]
    fn random_circuits_round_trip(
        seed in 0u64..1_000_000,
        inputs in 1usize..4,
        latches in 1usize..5,
        gates in 0usize..40,
    ) {
        use presat::circuit::sim;
        let c = generators::random_dag(inputs, latches, gates, seed);
        let reference = sim::enumerate_transitions(&c);
        let via_bench = bench::parse(&bench::write(&c)).expect("bench round trip");
        prop_assert_eq!(sim::enumerate_transitions(&via_bench), reference.clone());
        let via_aiger = aiger::parse(&aiger::write(&c)).expect("aiger round trip");
        prop_assert_eq!(sim::enumerate_transitions(&via_aiger), reference);
    }
}

/// Every generator's output survives a write→parse round trip in both
/// netlist formats (transition-exact, checked elsewhere; here we sweep more
/// shapes).
#[test]
fn writers_produce_parseable_output() {
    let circuits = vec![
        generators::counter(5, true),
        generators::shift_register(6),
        generators::lfsr(6),
        generators::parity(4),
        generators::round_robin_arbiter(3),
        generators::comparator(4),
        generators::gray_counter(4),
        generators::johnson_counter(5),
        generators::traffic_controller(),
        generators::fifo_controller(3),
        generators::random_dag(4, 5, 40, 99),
    ];
    for c in &circuits {
        let bench_text = bench::write(c);
        bench::parse(&bench_text).unwrap_or_else(|e| panic!("{} bench: {e}", c.name()));
        let aag_text = aiger::write(c);
        aiger::parse(&aag_text).unwrap_or_else(|e| panic!("{} aiger: {e}", c.name()));
    }
}
