//! Fuzz-style robustness: the text parsers must return errors, never
//! panic, on arbitrary input — and must accept everything their writers
//! produce. Formerly proptest-based; now seeded random-noise loops on the
//! in-tree [`SplitMix64`] PRNG, plus the explicit regression cases the old
//! fuzzer once discovered.

use presat::circuit::{aiger, bench, generators};
use presat::logic::dimacs;
use presat::logic::rng::SplitMix64;

/// A random string of up to `max_len` printable-ish Unicode scalars
/// (control characters included — parsers must survive those too).
fn random_text(rng: &mut SplitMix64, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len + 1);
    (0..len)
        .map(|_| {
            // Below the surrogate range, so every draw is a valid scalar.
            char::from_u32(rng.gen_u64_below(0xD800) as u32).unwrap_or('\u{FFFD}')
        })
        .collect()
}

fn random_lowercase(rng: &mut SplitMix64, min: usize, max: usize) -> String {
    let len = rng.gen_range(min..max + 1);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range(0..26) as u8))
        .collect()
}

/// Arbitrary text never panics any parser.
#[test]
fn parsers_never_panic_on_noise() {
    let mut rng = SplitMix64::seed_from_u64(0x6001);
    for _ in 0..256 {
        let text = random_text(&mut rng, 200);
        let _ = dimacs::parse(&text);
        let _ = bench::parse(&text);
        let _ = aiger::parse(&text);
    }
}

/// Structured-looking but malformed DIMACS never panics.
#[test]
fn dimacs_structured_noise() {
    let mut rng = SplitMix64::seed_from_u64(0x6002);
    for _ in 0..256 {
        let mut text = format!(
            "p cnf {} {}\n",
            rng.gen_range(0..1000),
            rng.gen_range(0..1000)
        );
        for _ in 0..rng.gen_range(0..40) {
            let v = rng.gen_range(0..40) as i64 - 20;
            text.push_str(&format!("{v} "));
        }
        text.push('\n');
        let _ = dimacs::parse(&text);
    }
}

/// Structured-looking but malformed AIGER never panics.
#[test]
fn aiger_structured_noise() {
    let mut rng = SplitMix64::seed_from_u64(0x6003);
    for _ in 0..256 {
        let mut text = format!(
            "aag {} {} {} {} {}\n",
            rng.gen_range(0..20),
            rng.gen_range(0..5),
            rng.gen_range(0..5),
            rng.gen_range(0..5),
            rng.gen_range(0..5)
        );
        for _ in 0..rng.gen_range(0..16) {
            let words: Vec<String> = (0..rng.gen_range(1..4))
                .map(|_| rng.gen_u64_below(64).to_string())
                .collect();
            text.push_str(&words.join(" "));
            text.push('\n');
        }
        let _ = aiger::parse(&text);
    }
}

/// Structured-looking but malformed BENCH never panics.
#[test]
fn bench_structured_noise() {
    let mut rng = SplitMix64::seed_from_u64(0x6004);
    let gates = ["AND", "OR", "NOT", "DFF", "XOR", "FROB"];
    for _ in 0..256 {
        let mut lines = Vec::new();
        for _ in 0..rng.gen_range(0..12) {
            let line = match rng.gen_range(0..4) {
                0 => format!("INPUT({})", random_lowercase(&mut rng, 1, 3)),
                1 => format!("OUTPUT({})", random_lowercase(&mut rng, 1, 3)),
                2 => {
                    let gate = gates[rng.gen_range(0..gates.len())];
                    let a = random_lowercase(&mut rng, 1, 3);
                    let args = if rng.gen_bool(0.5) {
                        format!("{a}, {}", random_lowercase(&mut rng, 1, 3))
                    } else {
                        a
                    };
                    format!("{} = {gate}({args})", random_lowercase(&mut rng, 1, 3))
                }
                _ => {
                    let len = rng.gen_range(0..11);
                    (0..len)
                        .map(|_| {
                            if rng.gen_bool(0.2) {
                                ' '
                            } else {
                                char::from(b'a' + rng.gen_range(0..26) as u8)
                            }
                        })
                        .collect()
                }
            };
            lines.push(line);
        }
        let _ = bench::parse(&lines.join("\n"));
    }
}

/// Regression: the old fuzzer's one saved shrink — an AIGER header
/// declaring one latch (`aag 1 0 1 0 0`) whose latch line carries an
/// out-of-range literal (`44 0`). Must error, not panic.
#[test]
fn aiger_latch_literal_out_of_range_regression() {
    assert!(aiger::parse("aag 1 0 1 0 0\n44 0\n").is_err());
}

/// Random sequential circuits survive write→parse round trips in both
/// netlist formats with transition-exact behaviour.
#[test]
fn random_circuits_round_trip() {
    use presat::circuit::sim;
    let mut rng = SplitMix64::seed_from_u64(0x6005);
    for case in 0..24 {
        let seed = rng.gen_u64_below(1_000_000);
        let inputs = rng.gen_range(1..4);
        let latches = rng.gen_range(1..5);
        let gates = rng.gen_range(0..40);
        let c = generators::random_dag(inputs, latches, gates, seed);
        let reference = sim::enumerate_transitions(&c);
        let via_bench = bench::parse(&bench::write(&c)).expect("bench round trip");
        assert_eq!(
            sim::enumerate_transitions(&via_bench),
            reference,
            "case {case} (seed {seed})"
        );
        let via_aiger = aiger::parse(&aiger::write(&c)).expect("aiger round trip");
        assert_eq!(
            sim::enumerate_transitions(&via_aiger),
            reference,
            "case {case} (seed {seed})"
        );
    }
}

/// Every generator's output survives a write→parse round trip in both
/// netlist formats (transition-exact, checked elsewhere; here we sweep more
/// shapes).
#[test]
fn writers_produce_parseable_output() {
    let circuits = vec![
        generators::counter(5, true),
        generators::shift_register(6),
        generators::lfsr(6),
        generators::parity(4),
        generators::round_robin_arbiter(3),
        generators::comparator(4),
        generators::gray_counter(4),
        generators::johnson_counter(5),
        generators::traffic_controller(),
        generators::fifo_controller(3),
        generators::random_dag(4, 5, 40, 99),
    ];
    for c in &circuits {
        let bench_text = bench::write(c);
        bench::parse(&bench_text).unwrap_or_else(|e| panic!("{} bench: {e}", c.name()));
        let aag_text = aiger::write(c);
        aiger::parse(&aag_text).unwrap_or_else(|e| panic!("{} aiger: {e}", c.name()));
    }
}
