//! End-to-end pipeline checks: circuit → Tseitin → all-SAT → state sets,
//! validated against BDD semantics and bit-parallel simulation.

use presat::bdd::BddManager;
use presat::circuit::{bench, generators, sim, Circuit, Tseitin};
use presat::logic::{truth_table, Var};
use presat::preimage::{BddPreimage, PreimageEngine, SatPreimage, StateSet};

/// Tseitin encoding of every next-state cone agrees with simulation for
/// every circuit family.
#[test]
fn tseitin_agrees_with_simulation() {
    let circuits = [
        generators::counter(4, true),
        generators::shift_register(4),
        generators::lfsr(5),
        generators::parity(3),
        generators::round_robin_arbiter(2),
        generators::comparator(2),
    ];
    for c in &circuits {
        let total = c.num_inputs() + c.num_latches();
        assert!(total <= 12, "keep the oracle cheap");
        let leaf_vars: Vec<Var> = Var::range(total).collect();
        for j in 0..c.num_latches() {
            let mut enc = Tseitin::new(c.aig(), leaf_vars.clone());
            let root = enc.lit_of(c.latch_next(j));
            let mut cnf = enc.into_cnf();
            cnf.add_unit(root);
            let models = truth_table::project_models_set(&cnf, &leaf_vars);
            // Compare against simulation of every leaf assignment.
            for bits in 0..(1u64 << total) {
                let inputs: Vec<u64> = (0..c.num_inputs()).map(|i| bits >> i & 1).collect();
                let state: Vec<u64> = (0..c.num_latches())
                    .map(|k| bits >> (c.num_inputs() + k) & 1)
                    .collect();
                let next = sim::next_state(c, &inputs, &state);
                let expect = next[j] & 1 == 1;
                let a = presat::logic::Assignment::from_bits(bits, total);
                assert_eq!(
                    models.contains_minterm(&a),
                    expect,
                    "{} latch {j} at {bits:b}",
                    c.name()
                );
            }
        }
    }
}

/// The BDD built from a circuit's Tseitin CNF projected onto the leaves
/// equals the BDD built structurally from the AIG.
#[test]
fn cnf_and_structural_bdd_agree() {
    let c = generators::parity(3);
    let total = c.num_inputs() + c.num_latches();
    let leaf_vars: Vec<Var> = Var::range(total).collect();
    let j = c.num_latches() - 1; // the parity latch

    // CNF route: Tseitin + assert root, project onto leaves by
    // quantifying the auxiliaries away in the BDD.
    let mut enc = Tseitin::new(c.aig(), leaf_vars.clone());
    let root = enc.lit_of(c.latch_next(j));
    let mut cnf = enc.into_cnf();
    cnf.add_unit(root);
    let mut m = BddManager::new(cnf.num_vars());
    let f_cnf = m.from_cnf(&cnf);
    let aux: Vec<Var> = (total..cnf.num_vars()).map(Var::new).collect();
    let f_projected = m.exists(f_cnf, &aux);

    // Structural route: evaluate the AIG over BDD leaf variables.
    let mut values: Vec<presat::bdd::BddId> = Vec::new();
    let aig = c.aig();
    for idx in 0..aig.node_count() {
        let node = presat::circuit::AigNodeId::from_raw_index(idx);
        let v = if aig.is_const_node(node) {
            m.constant(false)
        } else if let Some(leaf) = aig.leaf_index(node) {
            m.var(Var::new(leaf))
        } else {
            let (a, b) = aig.and_fanins(node).expect("AND node");
            let mut av = values[a.node().index()];
            if a.is_complemented() {
                av = m.not(av);
            }
            let mut bv = values[b.node().index()];
            if b.is_complemented() {
                bv = m.not(bv);
            }
            m.and(av, bv)
        };
        values.push(v);
    }
    let r = c.latch_next(j);
    let mut f_struct = values[r.node().index()];
    if r.is_complemented() {
        f_struct = m.not(f_struct);
    }

    assert_eq!(f_projected, f_struct, "CNF projection ≠ structural BDD");
}

/// Writing a generated circuit to `.bench` and re-parsing it preserves
/// preimages end to end.
#[test]
fn bench_round_trip_preserves_preimages() {
    let circuits: Vec<Circuit> = vec![
        generators::counter(3, true),
        generators::parity(3),
        generators::lfsr(4),
    ];
    for c in &circuits {
        let text = bench::write(c);
        let re = bench::parse(&text).expect("own output parses");
        let n = c.num_latches();
        for bits in [0u64, 1, (1 << n) - 1] {
            let t = StateSet::from_state_bits(bits, n);
            let a = SatPreimage::success_driven().preimage(c, &t);
            let b = SatPreimage::success_driven().preimage(&re, &t);
            assert!(
                a.states.semantically_eq(&b.states, n),
                "{} round-trip diverges",
                c.name()
            );
        }
    }
}

/// SAT and BDD preimage engines agree on a mid-size circuit where the
/// oracle would still be feasible but slow — engine-vs-engine only.
#[test]
fn sat_vs_bdd_on_mid_size() {
    let c = generators::parity(8); // 9 latches, 8 inputs: 2^17 oracle — skip it
    let t = StateSet::from_partial(&[(8, true)]);
    let sat = SatPreimage::success_driven().preimage(&c, &t);
    let bdd = BddPreimage::substitution().preimage(&c, &t);
    assert_eq!(
        sat.states.minterm_count(9),
        bdd.states.minterm_count(9)
    );
    // Exact parity count: odd-parity data states × free parity latch.
    assert_eq!(sat.states.minterm_count(9), 256);
}
