//! End-to-end tests of the `presat` command-line binary.

use std::io::Write;
use std::process::Command;

fn presat(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_presat"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("presat-cli-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).expect("create");
    f.write_all(contents.as_bytes()).expect("write");
    path
}

const TOGGLE_BENCH: &str = "INPUT(en)\nOUTPUT(q)\ns = DFF(n)\nn = XOR(en, s)\nq = BUFF(s)\n";

/// A 3-bit binary counter (`s' = s + 1`) in ASCII AIGER:
/// latch 0 toggles, latch 1 xors with l0, latch 2 xors with the carry
/// `l0 ∧ l1` (XOR spelled with three AND gates each).
const COUNTER3_AAG: &str = "\
aag 10 0 3 1 7
2 3
4 13
6 21
6
8 2 5
10 3 4
12 9 11
14 2 4
16 6 15
18 7 14
20 17 19
";

#[test]
fn solve_sat_instance() {
    let cnf = write_temp("sat.cnf", "p cnf 2 2\n1 2 0\n-1 2 0\n");
    let out = presat(&["solve", cnf.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(10));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("s SATISFIABLE"));
    assert!(stdout.contains("v "));
    // x2 must be true in every model.
    assert!(stdout.contains(" 2 "));
}

#[test]
fn solve_unsat_instance() {
    let cnf = write_temp("unsat.cnf", "p cnf 1 2\n1 0\n-1 0\n");
    let out = presat(&["solve", cnf.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(20));
    assert!(String::from_utf8_lossy(&out.stdout).contains("s UNSATISFIABLE"));
}

#[test]
fn allsat_projection() {
    // (x1 ∨ x2) projected onto x1: both phases possible → 1 top cube? No:
    // projection = {x1=0 (x2=1 completes), x1=1} = everything → 2 minterms.
    let cnf = write_temp("allsat.cnf", "p cnf 2 1\n1 2 0\n");
    let out = presat(&["allsat", cnf.to_str().unwrap(), "--project", "1"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 minterms"), "{stdout}");
}

#[test]
fn allsat_engine_flag() {
    let cnf = write_temp("allsat2.cnf", "p cnf 3 1\n1 -2 3 0\n");
    for engine in ["blocking", "min-blocking", "success-driven", "chrono"] {
        let out = presat(&[
            "allsat",
            cnf.to_str().unwrap(),
            "--project",
            "3",
            "--engine",
            engine,
        ]);
        assert!(out.status.success());
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("7 minterms"), "{engine}: {stdout}");
    }
}

#[test]
fn info_reads_bench() {
    let path = write_temp("toggle.bench", TOGGLE_BENCH);
    let out = presat(&["info", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("PI=1"));
    assert!(stdout.contains("L=1"));
}

#[test]
fn preimage_on_aiger_counter() {
    let path = write_temp("cnt3.aag", COUNTER3_AAG);
    let out = presat(&[
        "preimage",
        path.to_str().unwrap(),
        "--target",
        "5",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 states"), "{stdout}");
}

#[test]
fn preimage_cube_target_and_engines() {
    let path = write_temp("toggle2.bench", TOGGLE_BENCH);
    for engine in [
        "blocking",
        "min-blocking",
        "success-driven",
        "chrono",
        "bdd-sub",
        "bdd-mono",
    ] {
        let out = presat(&[
            "preimage",
            path.to_str().unwrap(),
            "--target",
            "0=1",
            "--engine",
            engine,
        ]);
        assert!(out.status.success(), "{engine}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        // either state can step into s=1 (en chooses): 2 states
        assert!(stdout.contains("2 states"), "{engine}: {stdout}");
    }
}

#[test]
fn reach_and_justify_on_counter() {
    let path = write_temp("cnt3b.aag", COUNTER3_AAG);
    let out = presat(&["reach", path.to_str().unwrap(), "--target", "0"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("8 backward-reachable states"), "{stdout}");

    let out = presat(&[
        "justify",
        path.to_str().unwrap(),
        "--from",
        "3",
        "--target",
        "6",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("justifiable in 3 cycles"), "{stdout}");
}

#[test]
fn image_command() {
    let path = write_temp("cnt3c.aag", COUNTER3_AAG);
    let out = presat(&["image", path.to_str().unwrap(), "--source", "7"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 states"), "{stdout}");
}

#[test]
fn excite_command() {
    let path = write_temp("toggle4.bench", TOGGLE_BENCH);
    // q = s: excitable (value 1) exactly from the state with s = 1.
    let out = presat(&["excite", path.to_str().unwrap(), "--output", "0"]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 states"), "{stdout}");
    // value 0: the other state.
    let out = presat(&[
        "excite",
        path.to_str().unwrap(),
        "--output",
        "0",
        "--value",
        "0",
    ]);
    assert!(out.status.success());
    // out-of-range output index errors cleanly.
    let out = presat(&["excite", path.to_str().unwrap(), "--output", "7"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn helpful_errors() {
    let out = presat(&["frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = presat(&["preimage", "/nonexistent.bench", "--target", "0"]);
    assert_eq!(out.status.code(), Some(2));

    let path = write_temp("toggle3.bench", TOGGLE_BENCH);
    let out = presat(&["preimage", path.to_str().unwrap(), "--target", "9=1"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("out of range"));
}

#[test]
fn depth_command() {
    let path = write_temp("cnt3d.aag", COUNTER3_AAG);
    let out = presat(&["depth", path.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("sequential depth from the initial set: 7"), "{stdout}");
    let out = presat(&["depth", path.to_str().unwrap(), "--initial", "6"]);
    assert!(String::from_utf8_lossy(&out.stdout).contains(": 7"));
}

/// `--stats` emits one well-formed JSON object whose counters come from
/// all three instrumented layers (CDCL, all-SAT, preimage).
#[test]
fn stats_flag_emits_json_counters() {
    use presat::obs::json;

    // preimage: SAT + all-SAT + preimage layers all populated.
    let path = write_temp("cnt3s.aag", COUNTER3_AAG);
    let out = presat(&[
        "preimage",
        path.to_str().unwrap(),
        "--target",
        "5",
        "--stats",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_line = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON line in {stdout}"));
    json::validate(json_line).unwrap_or_else(|e| panic!("{e}\n{json_line}"));
    for key in ["decisions", "conflicts", "solutions", "blocking_clauses", "result_cubes"] {
        assert!(
            json::extract_u64(json_line, key).is_some(),
            "missing {key}: {json_line}"
        );
    }
    assert!(json::extract_u64(json_line, "wall_time_ns").unwrap_or(0) > 0);
    // The preimage of one counter state is one state: one solver call found
    // it, so the all-SAT layer genuinely counted.
    assert!(json::extract_u64(json_line, "solver_calls").unwrap_or(0) > 0);

    // solve: the SAT layer alone.
    let cnf = write_temp("stats.cnf", "p cnf 2 2\n1 2 0\n-1 2 0\n");
    let out = presat(&["solve", cnf.to_str().unwrap(), "--stats"]);
    assert_eq!(out.status.code(), Some(10));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_line = stdout.lines().find(|l| l.starts_with('{')).expect("JSON line");
    json::validate(json_line).unwrap();
    assert_eq!(json::extract_u64(json_line, "solves"), Some(1));

    // allsat and reach accept the flag too.
    let out = presat(&["allsat", cnf.to_str().unwrap(), "--project", "1", "--stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_line = stdout.lines().find(|l| l.starts_with('{')).expect("JSON line");
    json::validate(json_line).unwrap();
    assert!(json::extract_u64(json_line, "solutions").unwrap_or(0) > 0);

    let out = presat(&["reach", path.to_str().unwrap(), "--target", "0", "--stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_line = stdout.lines().find(|l| l.starts_with('{')).expect("JSON line");
    json::validate(json_line).unwrap();
    assert_eq!(json::extract_u64(json_line, "iterations"), Some(8));
}

/// An unknown `--engine` name is a hard error on every command that takes
/// the flag — including `image`, which used to fall through silently to
/// the SAT path — and the error names the valid engines.
#[test]
fn unknown_engine_is_a_hard_error_listing_valid_engines() {
    let circuit = write_temp("toggle-eng.bench", TOGGLE_BENCH);
    let cnf = write_temp("eng.cnf", "p cnf 2 1\n1 2 0\n");
    let cases: [&[&str]; 4] = [
        &["allsat", cnf.to_str().unwrap(), "--project", "1"],
        &["preimage", circuit.to_str().unwrap(), "--target", "0=1"],
        &["image", circuit.to_str().unwrap(), "--source", "0=1"],
        &["reach", circuit.to_str().unwrap(), "--target", "0=1"],
    ];
    for case in cases {
        let mut args: Vec<&str> = case.to_vec();
        args.extend(["--engine", "frobnicate"]);
        let out = presat(&args);
        assert_eq!(out.status.code(), Some(2), "{case:?} accepted a bogus engine");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("unknown engine"), "{case:?}: {stderr}");
        assert!(
            stderr.contains("valid engines") && stderr.contains("chrono"),
            "{case:?} error does not list valid engines: {stderr}"
        );
    }
}

/// Combining `--engine` with an option that engine ignores used to be a
/// silent no-op (e.g. `--engine chrono --jobs 8` enumerating on one
/// thread). Now it warns once on stderr, naming the options the selected
/// engine consumes — without changing the result or the exit status.
#[test]
fn engine_ignored_flags_warn_on_stderr() {
    let circuit = write_temp("toggle-warn.bench", TOGGLE_BENCH);
    let out = presat(&[
        "preimage",
        circuit.to_str().unwrap(),
        "--target",
        "0=1",
        "--engine",
        "chrono",
        "--jobs",
        "4",
    ]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("warning") && stderr.contains("--jobs") && stderr.contains("chrono"),
        "no ignored-flag warning: {stderr}"
    );
    assert_eq!(
        stderr.matches("warning").count(),
        1,
        "warning must appear exactly once: {stderr}"
    );
    // The consuming engine gets no warning.
    let out = presat(&[
        "preimage",
        circuit.to_str().unwrap(),
        "--target",
        "0=1",
        "--engine",
        "success-driven",
        "--jobs",
        "2",
    ]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.is_empty(), "spurious warning: {stderr}");
    // A BDD engine consumes none of the engine-tunable options; the
    // warning says so.
    let out = presat(&[
        "reach",
        circuit.to_str().unwrap(),
        "--target",
        "0=1",
        "--engine",
        "bdd-sub",
        "--no-inprocess",
    ]);
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--no-inprocess") && stderr.contains("no engine-specific options"),
        "{stderr}"
    );
}

/// `--no-inprocess` is accepted by the circuit commands and never changes
/// the result — inprocessing is equivalence-preserving.
#[test]
fn no_inprocess_flag_preserves_results() {
    let path = write_temp("cnt3i.aag", COUNTER3_AAG);
    let on = presat(&["reach", path.to_str().unwrap(), "--target", "0"]);
    let off = presat(&[
        "reach",
        path.to_str().unwrap(),
        "--target",
        "0",
        "--no-inprocess",
    ]);
    assert!(on.status.success() && off.status.success());
    // Per-iteration wall times vary run to run; compare everything else.
    let strip_times = |raw: &[u8]| -> Vec<String> {
        String::from_utf8_lossy(raw)
            .lines()
            .map(|l| match l.find(" in ") {
                Some(i) => l[..i].to_string(),
                None => l.to_string(),
            })
            .collect()
    };
    assert_eq!(
        strip_times(&on.stdout),
        strip_times(&off.stdout),
        "inprocessing changed the report"
    );
    // The two spellings together are rejected.
    let out = presat(&[
        "reach",
        path.to_str().unwrap(),
        "--target",
        "0",
        "--inprocess",
        "--no-inprocess",
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
}

#[test]
fn usage_without_arguments() {
    let out = presat(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
