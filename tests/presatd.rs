//! Protocol-level tests of the `presatd` daemon binary: hostile inputs,
//! disconnect semantics, and the multi-tenant bit-identity guarantee
//! (interleaved slices yield exactly the sequential cube set).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn daemon_cmd(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_presatd"));
    cmd.args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

/// Runs `presatd --stdin [args…]`, feeds `input`, returns stdout lines.
fn run_stdin(args: &[&str], input: &str) -> Vec<String> {
    let mut all = vec!["--stdin"];
    all.extend_from_slice(args);
    let mut child = daemon_cmd(&all).spawn().expect("daemon spawns");
    child
        .stdin
        .take()
        .expect("stdin piped")
        .write_all(input.as_bytes())
        .expect("request written");
    let out = child.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "daemon failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_string)
        .collect()
}

fn wait_with_deadline(child: &mut Child, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "{what}: daemon exited with {status}");
                return;
            }
            None if Instant::now() >= deadline => {
                let _ = child.kill();
                panic!("{what}: daemon did not exit in time");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn malformed_json_gets_an_error_event_and_the_stream_survives() {
    let lines = run_stdin(
        &[],
        "{this is not json\n{\"op\":\"solve\",\"id\":\"after\",\"cnf\":\"p cnf 1 1\\n1 0\\n\"}\n",
    );
    assert!(
        lines.iter().any(|l| l.contains(r#""event":"error""#)),
        "{lines:?}"
    );
    // The bad line did not poison the connection: the next request ran.
    assert!(
        lines
            .iter()
            .any(|l| l.contains(r#""id":"after","event":"done""#) && l.contains(r#""result":"sat""#)),
        "{lines:?}"
    );
}

#[test]
fn unknown_op_is_rejected_with_the_request_id_echoed() {
    let lines = run_stdin(&[], "{\"op\":\"frobnicate\",\"id\":\"x7\"}\n");
    let err = lines
        .iter()
        .find(|l| l.contains(r#""event":"error""#))
        .expect("an error event");
    assert!(err.contains(r#""id":"x7""#), "{err}");
    assert!(err.contains("frobnicate"), "{err}");
}

#[test]
fn oversized_request_lines_are_rejected_without_buffering() {
    // 5 MiB of garbage on one line crosses the 4 MiB request cap; the
    // daemon must reject it and keep serving.
    let huge = "x".repeat(5 << 20);
    let input = format!("{huge}\n{{\"op\":\"solve\",\"id\":\"ok\",\"cnf\":\"p cnf 1 1\\n1 0\\n\"}}\n");
    let lines = run_stdin(&[], &input);
    assert!(
        lines.iter().any(|l| l.contains("byte line limit")),
        "{lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains(r#""id":"ok","event":"done""#)),
        "{lines:?}"
    );
}

#[test]
fn stats_and_shutdown_answer_inline() {
    let lines = run_stdin(
        &[],
        "{\"op\":\"solve\",\"id\":\"s\",\"session\":\"t\",\"cnf\":\"p cnf 1 1\\n1 0\\n\"}\n\
         {\"op\":\"stats\",\"id\":\"m\"}\n\
         {\"op\":\"shutdown\",\"id\":\"bye\"}\n",
    );
    assert!(
        lines.iter().any(|l| l.contains(r#""event":"stats""#)),
        "{lines:?}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains(r#""id":"bye","event":"ok""#)),
        "{lines:?}"
    );
}

#[test]
fn stats_reports_accumulated_result_cubes_per_session() {
    let mut child = daemon_cmd(&["--listen", "127.0.0.1:0"])
        .spawn()
        .expect("daemon spawns");
    drop(child.stdin.take());
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("listening line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("an address")
        .to_string();

    // Run an allsat job to completion and note how many cubes its result
    // set holds…
    let mut conn = TcpStream::connect(&addr).expect("connect");
    conn.write_all(
        b"{\"op\":\"allsat\",\"id\":\"a\",\"session\":\"acc\",\
          \"cnf\":\"p cnf 3 2\\n1 2 0\\n-3 1 0\\n\",\"project\":3}\n",
    )
    .expect("request written");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let want;
    loop {
        let mut l = String::new();
        assert!(reader.read_line(&mut l).expect("read") > 0, "eof before done");
        if l.contains(r#""id":"a","event":"done""#) {
            assert!(l.contains(r#""complete":true"#), "{l}");
            want = l
                .split("\"num_cubes\":")
                .nth(1)
                .and_then(|rest| rest.split(',').next())
                .and_then(|digits| digits.trim().parse::<u64>().ok())
                .expect("done event carries num_cubes");
            break;
        }
    }
    assert!(want > 0, "the test formula has a nonempty solution set");

    // …then `stats` must report that accumulated result-set cube count in
    // the session's row. The `done` event is emitted from inside the
    // worker's slice, a moment before the scheduler folds the finished
    // job's counters into the session base — poll until the gauge lands.
    let mut last = String::new();
    let mut found = false;
    for round in 0..100 {
        conn.write_all(format!("{{\"op\":\"stats\",\"id\":\"m{round}\"}}\n").as_bytes())
            .expect("stats written");
        loop {
            let mut l = String::new();
            assert!(reader.read_line(&mut l).expect("read") > 0, "eof before stats");
            if l.contains(r#""event":"stats""#) {
                let row = l
                    .split(r#""session":"acc""#)
                    .nth(1)
                    .expect("a row for session acc");
                found = row.contains(&format!("\"result_cubes\":{want}"));
                last = l;
                break;
            }
        }
        if found {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        found,
        "stats row should report the accumulated result-set cube count {want}: {last}"
    );
    conn.write_all(b"{\"op\":\"shutdown\",\"id\":\"bye\"}\n")
        .expect("shutdown written");
    wait_with_deadline(&mut child, "stats result cubes");
}

/// An `n`-latch binary counter in BENCH format (`s' = s + 1`): every state
/// has exactly one predecessor, so backward reachability from one state
/// walks the whole 2^n cycle — arbitrarily heavy for large `n`.
fn counter_bench(n: usize) -> String {
    let mut s = String::from("INPUT(a)\nOUTPUT(y)\n");
    for j in 0..n {
        s.push_str(&format!("s{j} = DFF(n{j})\n"));
    }
    s.push_str("n0 = NOT(s0)\n");
    s.push_str("c0 = BUFF(s0)\n");
    for j in 1..n {
        s.push_str(&format!("n{j} = XOR(s{j}, c{})\n", j - 1));
        if j + 1 < n {
            s.push_str(&format!("c{j} = AND(s{j}, c{})\n", j - 1));
        }
    }
    s.push_str("y = BUFF(s0)\n");
    s
}

#[test]
fn tcp_disconnect_mid_stream_cancels_the_tenants_jobs() {
    let mut child = daemon_cmd(&["--listen", "127.0.0.1:0", "--slice-conflicts", "10"])
        .spawn()
        .expect("daemon spawns");
    drop(child.stdin.take());
    // The daemon announces its bound address on stderr.
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut line = String::new();
    stderr.read_line(&mut line).expect("listening line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("an address")
        .to_string();

    // Tenant 1 submits a 2^22-state reach (far too big to finish) and
    // vanishes mid-stream. The disconnect must cancel the job — otherwise
    // the shutdown below would wait on ~4M iterations.
    {
        let mut victim = TcpStream::connect(&addr).expect("connect");
        let circuit = counter_bench(22).replace('\n', "\\n");
        let req = format!(
            "{{\"op\":\"reach\",\"id\":\"doomed\",\"circuit\":\"{circuit}\",\"target\":\"0b{}\"}}\n",
            "0".repeat(22)
        );
        victim.write_all(req.as_bytes()).expect("request written");
        // Read the acceptance so the job is live before disconnecting.
        let mut reader = BufReader::new(victim.try_clone().expect("clone"));
        let mut accepted = String::new();
        reader.read_line(&mut accepted).expect("accepted line");
        assert!(accepted.contains(r#""event":"accepted""#), "{accepted}");
    } // drop = disconnect

    // Tenant 2 can still use the daemon, then shuts it down.
    let mut other = TcpStream::connect(&addr).expect("second connect");
    other
        .write_all(b"{\"op\":\"solve\",\"id\":\"alive\",\"cnf\":\"p cnf 1 1\\n1 0\\n\"}\n")
        .expect("request written");
    let mut reader = BufReader::new(other.try_clone().expect("clone"));
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut saw_done = false;
    while Instant::now() < deadline {
        let mut l = String::new();
        if reader.read_line(&mut l).unwrap_or(0) == 0 {
            break;
        }
        if l.contains(r#""id":"alive","event":"done""#) {
            saw_done = true;
            break;
        }
    }
    assert!(saw_done, "second tenant's solve never finished");
    other
        .write_all(b"{\"op\":\"shutdown\",\"id\":\"bye\"}\n")
        .expect("shutdown written");
    wait_with_deadline(&mut child, "tcp disconnect");
}

/// Cube rows (`… 0` lines) from a `presat allsat` CLI run.
fn cli_allsat_cubes(cnf: &str, project: usize) -> Vec<String> {
    let dir = std::env::temp_dir().join("presatd-tests");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("{}-allsat.cnf", std::process::id()));
    std::fs::write(&path, cnf).expect("cnf written");
    let out = Command::new(env!("CARGO_BIN_EXE_presat"))
        .args([
            "allsat",
            path.to_str().expect("utf8 path"),
            "--project",
            &project.to_string(),
        ])
        .output()
        .expect("presat runs");
    assert!(out.status.success());
    String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter(|l| !l.starts_with('c') && l.ends_with('0'))
        .map(str::to_string)
        .collect()
}

#[test]
fn interleaved_tenants_each_yield_exactly_the_sequential_cube_set() {
    // A 1-conflict quantum forces the two allsat tenants and the heavy
    // reach tenant to interleave slice by slice; each answer must still
    // equal the standalone CLI enumeration, cube for cube.
    let cnf_a = "p cnf 3 2\n1 2 0\n-3 1 0\n";
    let cnf_b = "p cnf 3 2\n-1 -2 0\n2 3 0\n";
    let circuit = counter_bench(4).replace('\n', "\\n");
    let input = format!(
        "{{\"op\":\"reach\",\"id\":\"heavy\",\"session\":\"big\",\"circuit\":\"{circuit}\",\"target\":\"0b0000\"}}\n\
         {{\"op\":\"allsat\",\"id\":\"a\",\"session\":\"one\",\"cnf\":\"{}\",\"project\":3}}\n\
         {{\"op\":\"allsat\",\"id\":\"b\",\"session\":\"two\",\"cnf\":\"{}\",\"project\":3}}\n",
        cnf_a.replace('\n', "\\n"),
        cnf_b.replace('\n', "\\n"),
    );
    let lines = run_stdin(&["--slice-conflicts", "1", "--jobs", "2"], &input);
    let heavy = lines
        .iter()
        .find(|l| l.contains(r#""id":"heavy","event":"done""#))
        .expect("heavy done");
    assert!(heavy.contains(r#""converged":true"#), "{heavy}");
    for (id, cnf) in [("a", cnf_a), ("b", cnf_b)] {
        let done = lines
            .iter()
            .find(|l| l.contains(&format!(r#""id":"{id}","event":"done""#)))
            .expect("allsat done");
        assert!(done.contains(r#""complete":true"#), "{done}");
        let want: Vec<String> = cli_allsat_cubes(cnf, 3)
            .iter()
            .map(|r| format!("\"{r}\""))
            .collect();
        let expected = format!("\"cubes\":[{}]", want.join(","));
        assert!(
            done.contains(&expected),
            "tenant {id}: daemon cubes differ from the CLI run\n daemon: {done}\n want:   {expected}"
        );
    }
}

#[test]
fn stdin_eof_drains_queued_jobs_before_exit() {
    // No shutdown request: closing stdin must still deliver every done
    // event (drain semantics), then exit 0.
    let lines = run_stdin(
        &["--slice-conflicts", "5"],
        "{\"op\":\"allsat\",\"id\":\"d\",\"cnf\":\"p cnf 2 1\\n1 2 0\\n\",\"project\":2}\n",
    );
    assert!(
        lines.iter().any(|l| l.contains(r#""id":"d","event":"done""#)),
        "{lines:?}"
    );
}

/// The pigeonhole principle PHP(p → p−1) in DIMACS: UNSAT, and provably
/// beyond unit propagation, so any conflict budget must trip.
fn pigeonhole_cnf(pigeons: usize) -> String {
    let holes = pigeons - 1;
    let var = |p: usize, h: usize| p * holes + h + 1;
    let mut clauses: Vec<String> = Vec::new();
    for p in 0..pigeons {
        clauses.push(
            (0..holes)
                .map(|h| var(p, h).to_string())
                .collect::<Vec<_>>()
                .join(" ")
                + " 0",
        );
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in p1 + 1..pigeons {
                clauses.push(format!("-{} -{} 0", var(p1, h), var(p2, h)));
            }
        }
    }
    format!(
        "p cnf {} {}\n{}\n",
        pigeons * holes,
        clauses.len(),
        clauses.join("\n")
    )
}

#[test]
fn per_request_conflict_budget_caps_a_heavy_job() {
    // PHP(6→5) is UNSAT but needs real search: a 3-conflict request
    // budget must stop the job with an incomplete answer.
    let input = format!(
        "{{\"op\":\"solve\",\"id\":\"capped\",\"cnf\":\"{}\",\"conflict_budget\":3}}\n",
        pigeonhole_cnf(6).replace('\n', "\\n")
    );
    let lines = run_stdin(&["--slice-conflicts", "1"], &input);
    let done = lines
        .iter()
        .find(|l| l.contains(r#""id":"capped","event":"done""#))
        .expect("done event");
    assert!(done.contains(r#""result":"unknown""#), "{done}");
    assert!(done.contains(r#""complete":false"#), "{done}");
    assert!(done.contains(r#""stop_reason":"conflicts""#), "{done}");
}
