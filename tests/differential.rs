//! Differential cross-engine fuzz harness.
//!
//! Seeded (SplitMix64) random CNF formulas and random circuits are run
//! through every all-SAT enumeration engine — blocking, minimized-blocking,
//! success-driven, parallel success-driven, and chrono — and the *expanded
//! model sets* are required to be semantically identical. Ground truth is
//! the BDD package: the engine cube sets are rebuilt as BDDs (a canonical
//! representation, so semantic equality is node-identity) against the
//! existential projection of the formula, and the solution counts are
//! checked against `BddManager::satcount`.
//!
//! `scripts/verify.sh` runs this harness at `PRESAT_TEST_JOBS=1` and `=4`
//! so the parallel engine is differentially tested at both thread counts.

use presat::allsat::{
    AllSatEngine, AllSatProblem, AllSatResult, BlockingAllSat, ChronoAllSat,
    MinimizedBlockingAllSat, ParallelAllSat, SuccessDrivenAllSat,
};
use presat::bdd::BddManager;
use presat::circuit::generators;
use presat::logic::rng::SplitMix64;
use presat::logic::{Cnf, Lit, Var};
use presat::preimage::{oracle, BddPreimage, PreimageEngine, SatPreimage, StateSet};

/// Fixed fuzz seed: the harness is deterministic so a failure reproduces.
const FUZZ_SEED: u64 = 0x5EED_D1FF;

/// Worker threads for the parallel engine, from `PRESAT_TEST_JOBS`
/// (default 4). `scripts/verify.sh` runs the harness at both 1 and 4.
fn env_jobs() -> usize {
    std::env::var("PRESAT_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Adaptive cube-and-conquer on/off from `PRESAT_TEST_ADAPTIVE`
/// (default 1 = adaptive). `scripts/verify.sh` runs the harness at both
/// settings, so each partitioning mode is differentially tested against
/// the BDD oracle.
fn env_adaptive() -> bool {
    std::env::var("PRESAT_TEST_ADAPTIVE")
        .ok()
        .and_then(|v| v.parse::<u8>().ok())
        .map(|v| v != 0)
        .unwrap_or(true)
}

fn random_cnf(rng: &mut SplitMix64, num_vars: usize, num_clauses: usize) -> Cnf {
    let mut cnf = Cnf::new(num_vars);
    for _ in 0..num_clauses {
        let width = 2 + rng.gen_range(0..2);
        let clause: Vec<Lit> = (0..width)
            .map(|_| Lit::with_phase(Var::new(rng.gen_range(0..num_vars)), rng.gen_bool(0.5)))
            .collect();
        cnf.add_clause(clause);
    }
    cnf
}

type EngineRun = Box<dyn Fn(&AllSatProblem) -> AllSatResult>;

/// Every enumeration engine under differential test, by name.
fn all_engines() -> Vec<(String, EngineRun)> {
    let mut engines: Vec<(String, EngineRun)> = vec![
        (
            "blocking".into(),
            Box::new(|p: &AllSatProblem| BlockingAllSat::new().enumerate(p)),
        ),
        (
            "min-blocking".into(),
            Box::new(|p: &AllSatProblem| MinimizedBlockingAllSat::new().enumerate(p)),
        ),
        (
            "success-driven".into(),
            Box::new(|p: &AllSatProblem| SuccessDrivenAllSat::new().enumerate(p)),
        ),
        (
            "chrono".into(),
            Box::new(|p: &AllSatProblem| ChronoAllSat::new().enumerate(p)),
        ),
    ];
    let adaptive = env_adaptive();
    for jobs in [1, 4, env_jobs()] {
        engines.push((
            format!("parallel-j{jobs}"),
            Box::new(move |p: &AllSatProblem| {
                ParallelAllSat::new(jobs).with_adaptive(adaptive).enumerate(p)
            }),
        ));
    }
    // A forced split storm (threshold 1): the adaptive cube tree fans out
    // maximally and the merged result must still match the BDD oracle.
    engines.push((
        "adaptive-storm-j4".into(),
        Box::new(|p: &AllSatProblem| {
            ParallelAllSat::new(4).with_split_threshold(1).enumerate(p)
        }),
    ));
    // The static prefix partitioner, so both modes are always covered
    // regardless of the env default.
    engines.push((
        "static-j4".into(),
        Box::new(|p: &AllSatProblem| {
            ParallelAllSat::new(4).with_adaptive(false).enumerate(p)
        }),
    ));
    engines
}

/// Projected model enumeration over random CNF formulas: every engine's
/// cube set must denote exactly the BDD's existential projection of the
/// formula onto the important variables, and every engine's minterm count
/// must equal `satcount` of that projection.
#[test]
fn random_cnf_engines_agree_with_bdd_oracle() {
    let mut rng = SplitMix64::seed_from_u64(FUZZ_SEED);
    for round in 0..25 {
        let num_vars = 8 + (round % 2);
        let num_clauses = 10 + rng.gen_range(0..8);
        let cnf = random_cnf(&mut rng, num_vars, num_clauses);
        let k = 5 + (round % 2);
        let important: Vec<Var> = Var::range(k).collect();
        let aux: Vec<Var> = (k..num_vars).map(Var::new).collect();

        // Ground truth: ∃aux. cnf as a canonical BDD.
        let mut m = BddManager::new(num_vars);
        let f = m.from_cnf(&cnf);
        let truth = m.exists(f, &aux);
        let expect_count = m.satcount(truth, k);

        let problem = AllSatProblem::new(cnf, important);
        for (name, run) in all_engines() {
            let result = run(&problem);
            assert!(result.complete, "round {round}: {name} incomplete");
            let got = m.from_cube_set(&result.cubes);
            assert!(
                got == truth,
                "round {round}: {name}'s expanded model set diverges from the BDD projection"
            );
            assert_eq!(
                result.minterm_count(k),
                expect_count,
                "round {round}: {name} counts wrong"
            );
        }
    }
}

/// Dense solution sets (few clauses) stress the chrono absorb rule and the
/// blocking engine's minterm explosion on a small scale.
#[test]
fn dense_solution_sets_agree_across_engines() {
    let mut rng = SplitMix64::seed_from_u64(FUZZ_SEED ^ 0xACE);
    for round in 0..15 {
        let num_vars = 7;
        let num_clauses = 3 + rng.gen_range(0..3);
        let cnf = random_cnf(&mut rng, num_vars, num_clauses);
        let k = 5;
        let important: Vec<Var> = Var::range(k).collect();
        let aux: Vec<Var> = (k..num_vars).map(Var::new).collect();
        let mut m = BddManager::new(num_vars);
        let f = m.from_cnf(&cnf);
        let truth = m.exists(f, &aux);
        let problem = AllSatProblem::new(cnf, important);
        for (name, run) in all_engines() {
            let result = run(&problem);
            let got = m.from_cube_set(&result.cubes);
            assert!(got == truth, "dense round {round}: {name} diverges");
        }
    }
}

/// Random-circuit preimages: every SAT preimage engine (including chrono at
/// the preimage layer) must agree with the BDD engine and the
/// exhaustive-simulation oracle on seeded random DAG circuits.
#[test]
fn random_circuit_preimages_agree_across_engines() {
    let jobs = env_jobs();
    let engines: Vec<Box<dyn PreimageEngine>> = vec![
        Box::new(SatPreimage::blocking()),
        Box::new(SatPreimage::min_blocking()),
        Box::new(SatPreimage::chrono()),
        Box::new(SatPreimage::success_driven()),
        Box::new(SatPreimage::success_driven().with_jobs(jobs)),
        Box::new(BddPreimage::substitution()),
    ];
    let mut rng = SplitMix64::seed_from_u64(FUZZ_SEED ^ 0xC1BC);
    for round in 0..10u64 {
        let circuit = generators::random_dag(3, 4, 28, rng.gen_u64_below(1000));
        let target = if round % 2 == 0 {
            StateSet::from_state_bits(rng.gen_u64_below(16), 4)
        } else {
            StateSet::from_partial(&[(rng.gen_range(0..4), rng.gen_bool(0.5))])
        };
        let expect = oracle::preimage(&circuit, &target);
        for engine in &engines {
            let got = engine.preimage(&circuit, &target);
            assert!(
                got.states.semantically_eq(&expect, 4),
                "round {round}: {} diverges from oracle on {} (target {target})",
                engine.name(),
                circuit.name()
            );
        }
    }
}
