//! DIMACS interchange: the workspace's CNF I/O interoperates with the
//! solver and the encoders.

use presat::circuit::generators;
use presat::logic::{dimacs, truth_table, Var};
use presat::preimage::{StateSet, StepEncoding};
use presat::sat::Solver;

#[test]
fn step_encoding_survives_dimacs() {
    let c = generators::counter(4, false);
    let enc = StepEncoding::build(&c, &StateSet::from_state_bits(5, 4));
    let text = dimacs::write(enc.cnf());
    let back = dimacs::parse(&text).expect("own output parses");
    assert_eq!(&back, enc.cnf());

    // Solving the round-tripped CNF still finds the unique predecessor 4.
    let mut solver = Solver::from_cnf(&back);
    let model = solver.solve().into_model().expect("preimage nonempty");
    let state: u64 = (0..4)
        .map(|j| u64::from(model.value(Var::new(j)) == Some(true)) << j)
        .sum();
    assert_eq!(state, 4);
}

#[test]
fn dimacs_accepts_competition_style_files() {
    let text = "\
c FILE: example.cnf
c random notes
p cnf 5 4
1 -2 0
2 3
-4 0
5 -1 0
-3 -5 0
";
    let cnf = dimacs::parse(text).expect("parses");
    assert_eq!(cnf.num_vars(), 5);
    assert_eq!(cnf.num_clauses(), 4);
    assert!(truth_table::is_satisfiable(&cnf));
}

#[test]
fn dimacs_write_is_reparsable_for_generated_workloads() {
    for seed in 0..5 {
        let c = generators::random_dag(3, 3, 20, seed);
        let enc = StepEncoding::build(&c, &StateSet::from_state_bits(seed % 8, 3));
        let text = dimacs::write(enc.cnf());
        let back = dimacs::parse(&text).expect("round trip");
        assert_eq!(&back, enc.cnf(), "seed {seed}");
    }
}
