//! Property suite for root-level inprocessing.
//!
//! Inprocessing (subsumption, self-subsuming resolution, vivification at
//! the solver's root level) is admissible for all-solutions solving only
//! if it is *equivalence-preserving*: every pass must leave the formula
//! with exactly the same model set, not merely equisatisfiable. This
//! suite checks that contract three ways:
//!
//! * seeded random CNFs, inprocessed and then fully enumerated, against
//!   the BDD package as ground truth (canonical model sets + `satcount`);
//! * every circuit generator family plus the embedded benchmarks, through
//!   the full backward-reachability fixed point, inprocessing on vs. off
//!   and against the exhaustive-simulation oracle;
//! * mid-session round trips (enumerate → retire/inprocess → enumerate)
//!   at 1 and 4 worker threads, each round pinned to the BDD projection
//!   of an equivalent monolithic formula.
//!
//! `scripts/verify.sh` runs the suite at `PRESAT_TEST_INPROCESS=0` and
//! `=1`, so every oracle comparison here is exercised in both modes.

use presat::allsat::{EnumLimits, IncrementalAllSat, SuccessDrivenAllSat};
use presat::bdd::BddManager;
use presat::circuit::{embedded, generators, Circuit};
use presat::logic::rng::SplitMix64;
use presat::logic::{Assignment, Cnf, Lit, Var};
use presat::preimage::{backward_reach, oracle, ReachOptions, SatPreimage, StateSet};
use presat::sat::{SolveResult, Solver};

/// Fixed fuzz seed: the suite is deterministic so a failure reproduces.
const FUZZ_SEED: u64 = 0x17B0_CE55;

/// Whether inprocessing is on for the env-parameterized tests, from
/// `PRESAT_TEST_INPROCESS` (default on; `0` = off). `scripts/verify.sh`
/// runs the suite in both modes.
fn env_inprocess() -> bool {
    std::env::var("PRESAT_TEST_INPROCESS")
        .map(|v| v != "0")
        .unwrap_or(true)
}

/// Random CNF with a clause-width mix of 2..=4, so the inprocessor sees
/// permanent binaries, subsumption candidates, and vivification targets.
fn random_cnf(rng: &mut SplitMix64, num_vars: usize, num_clauses: usize) -> Cnf {
    let mut cnf = Cnf::new(num_vars);
    for _ in 0..num_clauses {
        let width = 2 + rng.gen_range(0..3);
        let clause: Vec<Lit> = (0..width)
            .map(|_| Lit::with_phase(Var::new(rng.gen_range(0..num_vars)), rng.gen_bool(0.5)))
            .collect();
        cnf.add_clause(clause);
    }
    cnf
}

/// All total models of the solver's formula over vars `0..n`, as sorted
/// bit patterns, by solve-and-block.
fn solver_models(s: &mut Solver, n: usize) -> Vec<u64> {
    let mut out = Vec::new();
    loop {
        match s.solve() {
            SolveResult::Sat(m) => {
                let mut bits = 0u64;
                let mut block = Vec::with_capacity(n);
                for i in 0..n {
                    let v = m.value(Var::new(i)) == Some(true);
                    bits |= u64::from(v) << i;
                    block.push(Lit::with_phase(Var::new(i), !v));
                }
                out.push(bits);
                if !s.add_clause(block) {
                    break;
                }
            }
            SolveResult::Unsat => break,
            SolveResult::Unknown(r) => panic!("unbudgeted solve stopped: {r}"),
        }
    }
    out.sort_unstable();
    out
}

/// Every inprocessing pass must preserve the model set exactly. Ground
/// truth is the BDD of the *original* formula: the inprocessed solver's
/// enumeration must list precisely the assignments the BDD accepts, and
/// as many as `satcount` promises.
#[test]
fn inprocessing_preserves_models_on_random_cnfs_vs_bdd_oracle() {
    let mut rng = SplitMix64::seed_from_u64(FUZZ_SEED);
    for round in 0..40 {
        let n = 7 + (round % 2);
        let num_clauses = 6 + rng.gen_range(0..12);
        let cnf = random_cnf(&mut rng, n, num_clauses);

        let mut m = BddManager::new(n);
        let truth = m.from_cnf(&cnf);
        let expect: Vec<u64> = (0..1u64 << n)
            .filter(|&bits| m.eval(truth, &Assignment::from_bits(bits, n)))
            .collect();
        assert_eq!(expect.len() as u128, m.satcount(truth, n));

        let mut s = Solver::from_cnf(&cnf);
        s.inprocess();
        let got = solver_models(&mut s, n);
        assert_eq!(
            got, expect,
            "round {round}: inprocessing changed the model set ({num_clauses} clauses over {n} vars)"
        );
    }
}

/// Repeated inprocessing (the session pattern: a pass after every
/// retirement) must stay sound — later passes see the strengthened
/// formula, not the original, and still may not lose or invent models.
#[test]
fn repeated_inprocessing_rounds_stay_equivalent() {
    let mut rng = SplitMix64::seed_from_u64(FUZZ_SEED ^ 0xAAAA);
    for round in 0..10 {
        let n = 7;
        let num_clauses = 10 + rng.gen_range(0..6);
        let cnf = random_cnf(&mut rng, n, num_clauses);
        let mut m = BddManager::new(n);
        let truth = m.from_cnf(&cnf);
        let expect: Vec<u64> = (0..1u64 << n)
            .filter(|&bits| m.eval(truth, &Assignment::from_bits(bits, n)))
            .collect();
        let mut s = Solver::from_cnf(&cnf);
        for _ in 0..3 {
            s.inprocess();
        }
        assert_eq!(
            solver_models(&mut s, n),
            expect,
            "round {round}: iterated inprocessing diverged"
        );
    }
}

/// One backward-reachability fixed point per circuit family, inprocessing
/// on vs. off and against the exhaustive-simulation oracle. Inprocessing
/// runs at every retirement boundary inside the incremental session, so a
/// deep fixed point exercises it dozens of times per circuit.
fn assert_family_reach_invariant(circuit: &Circuit, target: &StateSet) {
    let n = circuit.num_latches();
    let expect = oracle::backward_reachable_bits(circuit, target);
    for jobs in [1usize, 4] {
        let run = |inprocess: bool| {
            backward_reach(
                &SatPreimage::success_driven().with_jobs(jobs),
                circuit,
                target,
                ReachOptions {
                    incremental: true,
                    inprocess,
                    ..ReachOptions::default()
                },
            )
        };
        let on = run(true);
        let off = run(false);
        let label = format!("{} (target {target}, jobs {jobs})", circuit.name());
        assert_eq!(
            on.reached.cubes(),
            off.reached.cubes(),
            "inprocessing changed the reached set: {label}"
        );
        assert_eq!(on.converged, off.converged, "converged: {label}");
        assert_eq!(
            on.iterations.len(),
            off.iterations.len(),
            "iteration count: {label}"
        );
        assert_eq!(
            on.reached_states,
            expect.len() as u128,
            "oracle cardinality: {label}"
        );
        for &b in &expect {
            assert!(
                on.reached.contains_bits(b, n),
                "oracle state {b:0n$b} missing: {label}"
            );
        }
    }
}

#[test]
fn generator_families_preserve_reachability_under_inprocessing() {
    assert_family_reach_invariant(
        &generators::counter(3, false),
        &StateSet::from_state_bits(0, 3),
    );
    assert_family_reach_invariant(&generators::lfsr(4), &StateSet::from_state_bits(1, 4));
    assert_family_reach_invariant(
        &generators::shift_register(4),
        &StateSet::from_partial(&[(3, true)]),
    );
    assert_family_reach_invariant(
        &generators::parity(3),
        &StateSet::from_partial(&[(3, true)]),
    );
    assert_family_reach_invariant(
        &generators::round_robin_arbiter(2),
        &StateSet::from_partial(&[(2, true)]),
    );
    assert_family_reach_invariant(
        &generators::comparator(3),
        &StateSet::from_partial(&[(3, true)]),
    );
    for seed in 0..2 {
        assert_family_reach_invariant(
            &generators::random_dag(3, 4, 25, seed),
            &StateSet::from_state_bits(seed % 16, 4),
        );
    }
}

#[test]
fn embedded_benchmarks_preserve_reachability_under_inprocessing() {
    let s27 = embedded::s27().unwrap();
    assert_family_reach_invariant(&s27, &StateSet::from_state_bits(2, 3));
    let ctl2 = embedded::ctl2().unwrap();
    let n = ctl2.num_latches();
    assert_family_reach_invariant(&ctl2, &StateSet::from_state_bits(0, n));
}

/// Mid-session round trip: enumerate → retire (inprocessing fires) →
/// enumerate, ten rounds deep, with the inprocessing-on session compared
/// against an inprocessing-off twin *and* against the BDD projection of
/// an equivalent monolithic formula every round.
fn mid_session_round_trip(jobs: usize) {
    let n = 6;
    let mut rng = SplitMix64::seed_from_u64(FUZZ_SEED ^ (0x40B + jobs as u64));
    let rand_lit =
        |rng: &mut SplitMix64| Lit::with_phase(Var::new(rng.gen_range(0..n)), rng.gen_bool(0.5));
    let mut base = Cnf::new(n);
    let mut base_clauses: Vec<Vec<Lit>> = Vec::new();
    for _ in 0..8 {
        let c: Vec<Lit> = (0..3).map(|_| rand_lit(&mut rng)).collect();
        base_clauses.push(c.clone());
        base.add_clause(c);
    }
    let important: Vec<Var> = Var::range(n).collect();
    let mut on = IncrementalAllSat::new(base.clone(), important.clone(), SuccessDrivenAllSat::new(), jobs);
    let mut off =
        IncrementalAllSat::new(base, important.clone(), SuccessDrivenAllSat::new(), jobs);
    on.set_inprocess(true);
    off.set_inprocess(false);

    // The cold mirror: every group clause ever added, activation units for
    // the current group, retired groups forced off.
    let mut group_clauses: Vec<Vec<Lit>> = Vec::new();
    let mut retired: Vec<Lit> = Vec::new();
    let mut num_vars = n;
    for round in 0..10 {
        let act_on = Lit::pos(on.add_var());
        let act_off = Lit::pos(off.add_var());
        assert_eq!(act_on, act_off, "sessions must allocate in lockstep");
        num_vars += 1;
        for _ in 0..4 {
            let mut c = vec![!act_on];
            for _ in 0..3 {
                c.push(rand_lit(&mut rng));
            }
            group_clauses.push(c.clone());
            on.add_clause(c.clone());
            off.add_clause(c);
        }
        let limits = EnumLimits::none();
        let got_on = on.enumerate_limited(&[act_on], &limits, &mut presat::obs::NullSink);
        let got_off = off.enumerate_limited(&[act_off], &limits, &mut presat::obs::NullSink);
        assert!(got_on.complete && got_off.complete, "round {round}");
        assert_eq!(
            got_on.cubes.cubes(),
            got_off.cubes.cubes(),
            "round {round} (jobs {jobs}): inprocessing changed the enumeration"
        );

        let mut mirror = Cnf::new(num_vars);
        for c in base_clauses.iter().chain(group_clauses.iter()) {
            mirror.add_clause(c.clone());
        }
        mirror.add_clause(vec![act_on]);
        for &r in &retired {
            mirror.add_clause(vec![!r]);
        }
        let mut m = BddManager::new(num_vars);
        let f = m.from_cnf(&mirror);
        let aux: Vec<Var> = (n..num_vars).map(Var::new).collect();
        let truth = m.exists(f, &aux);
        let got = m.from_cube_set(&got_on.cubes);
        assert!(
            got == truth,
            "round {round} (jobs {jobs}): session diverges from the BDD projection"
        );

        // Retirement triggers the next inprocessing pass on `on`.
        retired.push(act_on);
        on.retire(act_on);
        off.retire(act_off);
    }
}

#[test]
fn mid_session_round_trip_at_jobs_1() {
    mid_session_round_trip(1);
}

#[test]
fn mid_session_round_trip_at_jobs_4() {
    mid_session_round_trip(4);
}

/// Env-parameterized oracle check: the whole-fixed-point comparison runs
/// with inprocessing set from `PRESAT_TEST_INPROCESS`, so verify.sh's
/// double run pins both modes against ground truth.
#[test]
fn env_selected_inprocess_mode_agrees_with_oracle() {
    let inprocess = env_inprocess();
    for (circuit, target) in [
        (
            generators::counter(4, false),
            StateSet::from_state_bits(9, 4),
        ),
        (generators::lfsr(4), StateSet::from_state_bits(1, 4)),
        (
            generators::round_robin_arbiter(2),
            StateSet::from_partial(&[(2, true)]),
        ),
    ] {
        let n = circuit.num_latches();
        let expect = oracle::backward_reachable_bits(&circuit, &target);
        let report = backward_reach(
            &SatPreimage::success_driven(),
            &circuit,
            &target,
            ReachOptions {
                incremental: true,
                inprocess,
                ..ReachOptions::default()
            },
        );
        assert!(report.converged);
        assert_eq!(
            report.reached_states,
            expect.len() as u128,
            "{} (inprocess={inprocess})",
            circuit.name()
        );
        for &b in &expect {
            assert!(report.reached.contains_bits(b, n));
        }
    }
}
