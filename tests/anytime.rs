//! Anytime-enumeration property suite: budgets, cancellation, and
//! solution caps must yield *partial but sound* results.
//!
//! The contract under test, for every engine and at every thread count:
//! an interrupted enumeration returns a cube set that is (1) pairwise
//! disjoint, (2) a subset of the exhaustive run's solution set, and
//! (3) honestly flagged `complete = false` with a `stop_reason` — never a
//! spuriously complete answer, and in particular never an empty set
//! masquerading as "UNSAT". An uninterrupted run under generous limits is
//! bit-identical to the unlimited one.

use presat::allsat::{
    AllSatEngine, AllSatProblem, BlockingAllSat, Budget, CancelToken, ChronoAllSat, EnumLimits,
    MinimizedBlockingAllSat, ParallelAllSat, StopReason, SuccessDrivenAllSat,
};
use presat::circuit::generators;
use presat::logic::rng::SplitMix64;
use presat::logic::{Cnf, CubeSet, Lit, Var};
use presat::obs::{Event, ObsSink};
use presat::preimage::{backward_reach, ReachOptions, SatPreimage, StateSet};

fn lit(v: usize, pos: bool) -> Lit {
    Lit::with_phase(Var::new(v), pos)
}

/// A random 3-CNF over `n` variables with `m` clauses.
fn random_cnf(rng: &mut SplitMix64, n: usize, m: usize) -> Cnf {
    let mut cnf = Cnf::new(n);
    for _ in 0..m {
        let c: Vec<Lit> = (0..3)
            .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
            .collect();
        cnf.add_clause(c);
    }
    cnf
}

/// Bitmap of which of the `2^k` minterms over variables `0..k` the cube
/// set covers.
fn covered(cubes: &CubeSet, k: usize) -> Vec<bool> {
    (0..1u64 << k)
        .map(|m| {
            cubes.cubes().iter().any(|c| {
                c.lits()
                    .iter()
                    .all(|l| (m >> l.var().index() & 1 == 1) == l.is_pos())
            })
        })
        .collect()
}

/// Every pair of cubes conflicts on at least one variable (so no minterm
/// is enumerated twice).
fn pairwise_disjoint(cubes: &CubeSet) -> bool {
    let cs = cubes.cubes();
    for i in 0..cs.len() {
        for j in i + 1..cs.len() {
            let conflict = cs[i].lits().iter().any(|la| {
                cs[j]
                    .lits()
                    .iter()
                    .any(|lb| la.var() == lb.var() && *la != *lb)
            });
            if !conflict {
                return false;
            }
        }
    }
    true
}

/// Checks the anytime invariants of `partial` against the exhaustive
/// `full` run over `k` important variables.
fn assert_sound_partial(
    partial: &presat::allsat::AllSatResult,
    full: &presat::allsat::AllSatResult,
    k: usize,
    what: &str,
) {
    assert_sound_partial_opts(partial, full, k, true, what);
}

/// As [`assert_sound_partial`], with the disjointness check optional:
/// the minimized-blocking engine shortens its cubes and its output may
/// legitimately overlap (complete and partial runs alike).
fn assert_sound_partial_opts(
    partial: &presat::allsat::AllSatResult,
    full: &presat::allsat::AllSatResult,
    k: usize,
    disjoint: bool,
    what: &str,
) {
    assert!(
        !disjoint || pairwise_disjoint(&partial.cubes),
        "{what}: partial cubes overlap"
    );
    let p = covered(&partial.cubes, k);
    let f = covered(&full.cubes, k);
    for (m, (&in_p, &in_f)) in p.iter().zip(f.iter()).enumerate() {
        assert!(
            !in_p || in_f,
            "{what}: partial claims non-solution minterm {m:#b}"
        );
    }
    if partial.complete {
        assert_eq!(partial.stop_reason, None, "{what}: complete but stopped");
        assert_eq!(
            partial.cubes.cubes(),
            full.cubes.cubes(),
            "{what}: complete run diverges from the unlimited one"
        );
    } else {
        assert!(
            partial.stop_reason.is_some(),
            "{what}: incomplete without a stop reason"
        );
    }
}

/// Conflict budgets at every size, sequential engines: the result is
/// always a sound partial answer, and a generous budget reproduces the
/// unlimited run bit for bit.
#[test]
fn conflict_budgets_yield_sound_partial_results() {
    let mut rng = SplitMix64::seed_from_u64(0xA11);
    for case in 0..12 {
        let n = 8;
        let k = 6;
        let cnf = random_cnf(&mut rng, n, 24);
        let important: Vec<Var> = Var::range(k).collect();
        let problem = AllSatProblem::new(cnf, important);
        // Each engine's partial runs are checked against that engine's own
        // unlimited run (cube shapes differ across engine families).
        let (sd, bl, mb, ch) = (
            SuccessDrivenAllSat::new(),
            BlockingAllSat::new(),
            MinimizedBlockingAllSat::new(),
            ChronoAllSat::new(),
        );
        let engines: [(&str, &dyn AllSatEngine); 4] = [
            ("success-driven", &sd),
            ("blocking", &bl),
            ("min-blocking", &mb),
            ("chrono", &ch),
        ];
        for (name, engine) in engines {
            let full = engine.enumerate(&problem);
            for budget in [0u64, 1, 2, 5, 1_000_000] {
                let limits =
                    EnumLimits::none().with_budget(Budget::unlimited().with_conflicts(budget));
                let result = engine.enumerate_limited(&problem, &limits, &mut presat::obs::NullSink);
                assert_sound_partial_opts(
                    &result,
                    &full,
                    k,
                    name != "min-blocking",
                    &format!("case {case} budget {budget} engine {name}"),
                );
                if !result.complete {
                    assert_eq!(
                        result.stop_reason,
                        Some(StopReason::Conflicts),
                        "case {case} budget {budget} engine {name}: wrong reason"
                    );
                }
            }
        }
    }
}

/// The same invariants hold for the parallel engine at 1 and 4 workers.
#[test]
fn parallel_budget_stops_are_sound_partial_results() {
    let mut rng = SplitMix64::seed_from_u64(0xA12);
    for case in 0..8 {
        let n = 9;
        let k = 6;
        let cnf = random_cnf(&mut rng, n, 26);
        let important: Vec<Var> = Var::range(k).collect();
        let problem = AllSatProblem::new(cnf, important);
        let full = SuccessDrivenAllSat::new().enumerate(&problem);
        for jobs in [1usize, 4] {
            for budget in [0u64, 1, 3, 1_000_000] {
                let limits =
                    EnumLimits::none().with_budget(Budget::unlimited().with_conflicts(budget));
                let result = ParallelAllSat::new(jobs).enumerate_limited(
                    &problem,
                    &limits,
                    &mut presat::obs::NullSink,
                );
                assert_sound_partial(
                    &result,
                    &full,
                    k,
                    &format!("case {case} jobs {jobs} budget {budget}"),
                );
                // The fleet spends ONE shared budget pot, not one per
                // worker: per-conflict charging bounds the overshoot at a
                // single conflict per worker, so total conflicts can never
                // inflate toward jobs × budget.
                assert!(
                    result.stats.sat.conflicts <= budget + jobs as u64,
                    "case {case} jobs {jobs} budget {budget}: \
                     {} conflicts spent from a {budget}-conflict budget",
                    result.stats.sat.conflicts
                );
            }
        }
    }
}

/// The shared budget pool holds at every thread count and in both
/// partitioning modes, including under a split storm (threshold 1), where
/// abandoned partial runs must still be charged against the pot.
#[test]
fn shared_pool_never_inflates_with_thread_count() {
    let mut rng = SplitMix64::seed_from_u64(0xA18);
    for case in 0..4 {
        let cnf = random_cnf(&mut rng, 10, 32);
        let problem = AllSatProblem::new(cnf, Var::range(7).collect());
        for budget in [8u64, 40] {
            let limits =
                EnumLimits::none().with_budget(Budget::unlimited().with_conflicts(budget));
            for jobs in [1usize, 2, 4, 7] {
                for (adaptive, threshold) in [(true, 1u64), (true, 1024), (false, 0)] {
                    let result = ParallelAllSat::new(jobs)
                        .with_adaptive(adaptive)
                        .with_split_threshold(threshold)
                        .enumerate_limited(&problem, &limits, &mut presat::obs::NullSink);
                    assert!(
                        result.stats.sat.conflicts <= budget + jobs as u64,
                        "case {case} jobs {jobs} budget {budget} adaptive {adaptive} \
                         threshold {threshold}: {} conflicts spent",
                        result.stats.sat.conflicts
                    );
                }
            }
        }
    }
}

/// A sink that fires a [`CancelToken`] after a fixed number of events —
/// a deterministic stand-in for "the user hit Ctrl-C mid-run".
struct CancelAfter {
    token: CancelToken,
    remaining: u64,
}

impl ObsSink for CancelAfter {
    fn record(&mut self, _event: &Event) {
        if self.remaining == 0 {
            self.token.cancel();
        } else {
            self.remaining -= 1;
        }
    }
}

/// Cancellation at a random point mid-enumeration: the partial cube set
/// stays pairwise disjoint and a subset of the full run, flagged
/// incomplete. Runs the graph engine at 1 and 4 workers.
#[test]
fn cancellation_mid_run_yields_sound_partial_results() {
    let mut rng = SplitMix64::seed_from_u64(0xA13);
    for case in 0..10 {
        let n = 9;
        let k = 6;
        let cnf = random_cnf(&mut rng, n, 24);
        let important: Vec<Var> = Var::range(k).collect();
        let problem = AllSatProblem::new(cnf, important);
        let full = SuccessDrivenAllSat::new().enumerate(&problem);
        let cut = rng.gen_range(0..40) as u64;
        for jobs in [1usize, 4] {
            let token = CancelToken::new();
            let mut sink = CancelAfter {
                token: token.clone(),
                remaining: cut,
            };
            let limits = EnumLimits::none().with_cancel(token);
            let result = ParallelAllSat::new(jobs).enumerate_limited(&problem, &limits, &mut sink);
            assert_sound_partial(
                &result,
                &full,
                k,
                &format!("case {case} jobs {jobs} cut {cut}"),
            );
            if !result.complete {
                assert_eq!(
                    result.stop_reason,
                    Some(StopReason::Cancelled),
                    "case {case} jobs {jobs} cut {cut}: wrong reason"
                );
            }
        }
    }
}

/// A token cancelled before the run starts returns an empty *incomplete*
/// result — the honest "I did nothing", not an UNSAT claim.
#[test]
fn precancelled_run_is_empty_and_incomplete() {
    let mut rng = SplitMix64::seed_from_u64(0xA14);
    let cnf = random_cnf(&mut rng, 6, 8);
    let problem = AllSatProblem::new(cnf.clone(), Var::range(4).collect());
    // Skip the degenerate case where the formula really is empty-solution.
    let full = SuccessDrivenAllSat::new().enumerate(&problem);
    let token = CancelToken::new();
    token.cancel();
    let limits = EnumLimits::none().with_cancel(token);
    for jobs in [1usize, 4] {
        let result =
            ParallelAllSat::new(jobs).enumerate_limited(&problem, &limits, &mut presat::obs::NullSink);
        assert!(!result.complete, "jobs {jobs}: pre-cancelled run claims completion");
        assert_eq!(result.stop_reason, Some(StopReason::Cancelled));
        assert!(
            result.cubes.cubes().len() <= full.cubes.cubes().len(),
            "jobs {jobs}: cancelled run exceeds the full enumeration"
        );
    }
}

/// `max_solutions` caps the enumeration: a capped run stops with
/// `MaxSolutions` after counting at least the cap (cache hits may
/// overshoot), and a cap above the solution count changes nothing.
#[test]
fn max_solutions_caps_enumeration() {
    let mut rng = SplitMix64::seed_from_u64(0xA15);
    for case in 0..10 {
        let n = 8;
        let k = 6;
        let cnf = random_cnf(&mut rng, n, 20);
        let important: Vec<Var> = Var::range(k).collect();
        let problem = AllSatProblem::new(cnf, important);
        let full = SuccessDrivenAllSat::new().enumerate(&problem);
        let total = full.minterm_count(k);
        for cap in [1u64, 3, 10] {
            let limits = EnumLimits::none().with_max_solutions(cap);
            let result = SuccessDrivenAllSat::new().enumerate_limited(
                &problem,
                &limits,
                &mut presat::obs::NullSink,
            );
            assert_sound_partial(&result, &full, k, &format!("case {case} cap {cap}"));
            if u128::from(cap) < total {
                assert!(!result.complete, "case {case} cap {cap}: cap below total yet complete");
                assert_eq!(result.stop_reason, Some(StopReason::MaxSolutions));
                assert!(
                    result.minterm_count(k) >= u128::from(cap),
                    "case {case} cap {cap}: stopped before reaching the cap"
                );
            }
        }
    }
}

/// Chrono-specific anytime contract: a cancelled or capped chrono run
/// returns a pairwise-disjoint subset of the exhaustive chrono answer
/// (the disjointness invariant survives interruption — the absorb rule
/// never retroactively widens an emitted cube), flagged incomplete with
/// the right stop reason.
#[test]
fn chrono_cancellation_and_caps_yield_disjoint_subsets() {
    let mut rng = SplitMix64::seed_from_u64(0xA17);
    for case in 0..10 {
        let n = 9;
        let k = 6;
        let cnf = random_cnf(&mut rng, n, 24);
        let important: Vec<Var> = Var::range(k).collect();
        let problem = AllSatProblem::new(cnf, important);
        let full = ChronoAllSat::new().enumerate(&problem);
        assert!(pairwise_disjoint(&full.cubes), "case {case}: full run overlaps");

        // Cancellation after a random number of events.
        let cut = rng.gen_range(0..20) as u64;
        let token = CancelToken::new();
        let mut sink = CancelAfter {
            token: token.clone(),
            remaining: cut,
        };
        let limits = EnumLimits::none().with_cancel(token);
        let result = ChronoAllSat::new().enumerate_limited(&problem, &limits, &mut sink);
        assert_sound_partial(&result, &full, k, &format!("case {case} cut {cut} chrono"));
        if !result.complete {
            assert_eq!(result.stop_reason, Some(StopReason::Cancelled));
        }

        // Solution caps count minterms, exactly like the other engines.
        let total = full.minterm_count(k);
        for cap in [1u64, 4] {
            let limits = EnumLimits::none().with_max_solutions(cap);
            let result = ChronoAllSat::new().enumerate_limited(
                &problem,
                &limits,
                &mut presat::obs::NullSink,
            );
            assert_sound_partial(&result, &full, k, &format!("case {case} cap {cap} chrono"));
            if u128::from(cap) < total {
                assert!(!result.complete);
                assert_eq!(result.stop_reason, Some(StopReason::MaxSolutions));
                assert!(result.minterm_count(k) >= u128::from(cap));
            }
        }
    }

    // A pre-cancelled chrono run is the honest empty incomplete answer.
    let cnf = random_cnf(&mut rng, 6, 8);
    let problem = AllSatProblem::new(cnf, Var::range(4).collect());
    let token = CancelToken::new();
    token.cancel();
    let limits = EnumLimits::none().with_cancel(token);
    let result =
        ChronoAllSat::new().enumerate_limited(&problem, &limits, &mut presat::obs::NullSink);
    assert!(!result.complete, "pre-cancelled chrono run claims completion");
    assert_eq!(result.stop_reason, Some(StopReason::Cancelled));
}

/// An interrupted backward-reachability run returns the deepest *verified*
/// frontier: a subset of the true backward-reachable set containing the
/// target, flagged incomplete and NOT converged — never a fabricated
/// fixed point.
#[test]
fn interrupted_reach_is_verified_underapproximation() {
    let circuit = generators::lfsr(6);
    let n = 6;
    let target = StateSet::from_state_bits(1, n);
    let engine = SatPreimage::success_driven();
    let full = backward_reach(&engine, &circuit, &target, ReachOptions::default());
    assert!(full.converged && full.complete && full.stop_reason.is_none());
    for incremental in [false, true] {
        for budget in [0u64, 1, 5, 50] {
            let options = ReachOptions {
                incremental,
                ..ReachOptions::default()
            }
            .with_total_budget(Budget::unlimited().with_conflicts(budget));
            let report = backward_reach(&engine, &circuit, &target, options);
            for s in 0..1u64 << n {
                assert!(
                    !report.reached.contains_bits(s, n) || full.reached.contains_bits(s, n),
                    "budget {budget}: unverified state {s:#b} in partial reach"
                );
            }
            assert!(
                report.reached.contains_bits(1, n),
                "budget {budget}: target missing from partial reach"
            );
            if report.complete {
                assert_eq!(report.reached_states, full.reached_states);
            } else {
                assert!(
                    !report.converged,
                    "budget {budget}: interrupted run claims convergence"
                );
                assert!(report.stop_reason.is_some());
            }
        }
    }
}

/// A cancelled reach stops promptly between iterations and reports
/// `Cancelled` without converging.
#[test]
fn cancelled_reach_reports_cancellation() {
    let circuit = generators::lfsr(6);
    let target = StateSet::from_state_bits(1, 6);
    let engine = SatPreimage::success_driven();
    let token = CancelToken::new();
    token.cancel();
    let options = ReachOptions::default().with_cancel(token);
    let report = backward_reach(&engine, &circuit, &target, options);
    assert!(!report.complete && !report.converged);
    assert_eq!(report.stop_reason, Some(StopReason::Cancelled));
    // The target itself is still reported (it is trivially backward-
    // reachable), so the partial answer is non-trivial even here.
    assert!(report.reached.contains_bits(1, 6));
}

/// Unlimited `EnumLimits` are the identity: `enumerate_limited` with no
/// limits installed is bit-identical to plain `enumerate` on every engine.
#[test]
fn no_limits_is_bit_identical_to_unlimited() {
    let mut rng = SplitMix64::seed_from_u64(0xA16);
    for _ in 0..6 {
        let cnf = random_cnf(&mut rng, 8, 22);
        let problem = AllSatProblem::new(cnf, Var::range(5).collect());
        let limits = EnumLimits::none();
        for jobs in [1usize, 4] {
            let plain = ParallelAllSat::new(jobs).enumerate(&problem);
            let limited = ParallelAllSat::new(jobs).enumerate_limited(
                &problem,
                &limits,
                &mut presat::obs::NullSink,
            );
            assert_eq!(plain.cubes.cubes(), limited.cubes.cubes());
            assert!(limited.complete && limited.stop_reason.is_none());
        }
    }
}
