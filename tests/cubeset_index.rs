//! Differential suite pinning the occurrence-indexed cube store against
//! the retained naive reference implementation.
//!
//! The indexed [`CubeSet`] is *defined* to produce exactly the cube
//! sequence the naive two-scan insert produces — that bit-identity is what
//! keeps the parallel-merge and sliced-daemon determinism guarantees
//! intact — so every case here asserts sequence equality (order included),
//! not just set equality. All streams are seeded [`SplitMix64`]; a failure
//! message carries the seed and parameters needed to replay it.

use presat::logic::rng::SplitMix64;
use presat::logic::{Cube, CubeSet, Lit, NaiveCubeSet, Var};

/// One random cube: `width` literals drawn over `nv` variables (variable
/// collisions resolved by `from_lits`' dedup; contradictions retried).
fn random_cube(rng: &mut SplitMix64, nv: usize, max_width: usize) -> Cube {
    loop {
        let width = rng.gen_range(1..max_width + 1);
        let lits: Vec<Lit> = (0..width)
            .map(|_| Lit::with_phase(Var::new(rng.gen_range(0..nv)), rng.gen_bool(0.5)))
            .collect();
        if let Ok(c) = Cube::from_lits(lits) {
            return c;
        }
    }
}

/// Feeds the same stream to both stores and asserts identical insert
/// verdicts and identical cube sequences after every single insert.
fn assert_differential(seed: u64, nv: usize, max_width: usize, inserts: usize) {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut naive = NaiveCubeSet::new();
    let mut indexed = CubeSet::new();
    for step in 0..inserts {
        let c = random_cube(&mut rng, nv, max_width);
        let a = naive.insert(c.clone());
        let b = indexed.insert(c.clone());
        assert_eq!(
            a, b,
            "insert verdict diverged at step {step} (seed {seed}, nv {nv}, \
             width {max_width}) on cube {c}"
        );
        assert_eq!(
            naive.cubes(),
            indexed.cubes(),
            "cube sequence diverged at step {step} (seed {seed}, nv {nv}, \
             width {max_width})"
        );
    }
}

#[test]
fn random_streams_match_naive_bit_for_bit() {
    // Varying width/density: narrow cubes over few variables absorb
    // heavily; wide cubes over many variables almost never collide. Both
    // regimes — and the transition — must match the reference exactly.
    for (seed, nv, max_width, inserts) in [
        (0x1001, 4, 2, 200),   // dense: constant absorption traffic
        (0x1002, 8, 3, 300),   // medium density
        (0x1003, 16, 5, 300),  // mixed
        (0x1004, 32, 4, 300),  // wide universe, wide prefilter spread
        (0x1005, 64, 8, 200),  // sparse: mostly disjoint cubes
        (0x1006, 100, 12, 200), // signature aliasing (vars 64.. fold onto 0..)
        (0x1007, 6, 1, 150),   // unit cubes only
    ] {
        assert_differential(seed, nv, max_width, inserts);
    }
}

#[test]
fn interleaved_unions_match_naive() {
    // Union goes through the same insert path; pin a merge of two
    // independently grown sets against naive insertion of the
    // concatenated streams.
    let mut rng = SplitMix64::seed_from_u64(0xA11A);
    let mut left = CubeSet::new();
    let mut right = CubeSet::new();
    let mut naive = NaiveCubeSet::new();
    let mut stream = Vec::new();
    for _ in 0..150 {
        let c = random_cube(&mut rng, 10, 4);
        left.insert(c.clone());
        stream.push(c);
    }
    for _ in 0..150 {
        let c = random_cube(&mut rng, 10, 4);
        right.insert(c.clone());
        stream.push(c);
    }
    // Naive replay: left's surviving cubes in order, then right's.
    for c in left.iter().chain(right.iter()) {
        naive.insert(c.clone());
    }
    let merged = left.union(&right);
    assert_eq!(naive.cubes(), merged.cubes());
    // And the merge is semantically the union of the raw stream.
    let direct: CubeSet = stream.into_iter().collect();
    let vars: Vec<Var> = Var::range(10).collect();
    assert!(merged.semantically_eq(&direct, &vars));
}

#[test]
fn duplicate_insert_is_rejected_identically() {
    let mut naive = NaiveCubeSet::new();
    let mut indexed = CubeSet::new();
    let c = Cube::from_lits([Lit::pos(Var::new(0)), Lit::neg(Var::new(3))]).unwrap();
    assert!(naive.insert(c.clone()) && indexed.insert(c.clone()));
    assert!(!naive.insert(c.clone()) && !indexed.insert(c.clone()));
    assert_eq!(naive.cubes(), indexed.cubes());
    assert_eq!(indexed.len(), 1);
}

#[test]
fn universe_cube_absorbs_everything_in_both_stores() {
    let mut rng = SplitMix64::seed_from_u64(0xD00D);
    let mut naive = NaiveCubeSet::new();
    let mut indexed = CubeSet::new();
    for _ in 0..50 {
        let c = random_cube(&mut rng, 12, 4);
        naive.insert(c.clone());
        indexed.insert(c);
    }
    // ⊤ wipes the set down to itself…
    assert!(naive.insert(Cube::top()));
    assert!(indexed.insert(Cube::top()));
    assert_eq!(naive.cubes(), indexed.cubes());
    assert_eq!(indexed.cubes(), &[Cube::top()]);
    assert!(indexed.is_universe());
    // …and everything after it is rejected.
    assert!(!naive.insert(Cube::top()));
    assert!(!indexed.insert(Cube::top()));
    let c = random_cube(&mut rng, 12, 4);
    assert!(!naive.insert(c.clone()));
    assert!(!indexed.insert(c));
    assert_eq!(naive.cubes(), indexed.cubes());
}

#[test]
fn empty_set_and_first_insert_edge_cases() {
    let mut indexed = CubeSet::new();
    assert!(indexed.is_empty());
    assert!(!indexed.is_universe());
    // First insert into an empty store takes the no-candidate fast path.
    assert!(indexed.insert(Cube::unit(Lit::pos(Var::new(7)))));
    assert_eq!(indexed.len(), 1);
    // ⊤ as the very first insert is the universe, in one cube.
    let mut top_first = CubeSet::new();
    assert!(top_first.insert(Cube::top()));
    assert!(top_first.is_universe());
    assert_eq!(top_first.len(), 1);
}

#[test]
fn absorption_keeps_survivor_order_across_removals() {
    // Hand-built absorption chain: the wide cube kills cubes 0 and 2 but
    // not 1 and 3; the survivors must keep their relative order and the
    // newcomer must land at the back — in both stores.
    let cube = |lits: &[(usize, bool)]| {
        Cube::from_lits(lits.iter().map(|&(v, p)| Lit::with_phase(Var::new(v), p))).unwrap()
    };
    let stream = [
        cube(&[(0, true), (1, true)]),
        cube(&[(2, false), (3, true)]),
        cube(&[(0, true), (1, false)]),
        cube(&[(4, true), (5, false)]),
        cube(&[(0, true)]), // absorbs #0 and #2
    ];
    let mut naive = NaiveCubeSet::new();
    let mut indexed = CubeSet::new();
    for c in &stream {
        naive.insert(c.clone());
        indexed.insert(c.clone());
    }
    assert_eq!(naive.cubes(), indexed.cubes());
    assert_eq!(
        indexed.cubes(),
        &[
            cube(&[(2, false), (3, true)]),
            cube(&[(4, true), (5, false)]),
            cube(&[(0, true)]),
        ]
    );
}

#[test]
fn index_counters_accumulate_under_load() {
    let mut rng = SplitMix64::seed_from_u64(0xBEEF);
    let mut indexed = CubeSet::new();
    for _ in 0..400 {
        indexed.insert(random_cube(&mut rng, 10, 4));
    }
    let st = indexed.index_stats();
    assert!(st.subsumption_checks > 0);
    assert!(st.index_candidates > 0);
    assert!(st.sig_rejects <= st.subsumption_checks);
    // The whole point of the index: far fewer candidates than the n² the
    // naive scans would have visited (400 inserts × up to ~2·n cubes).
    let naive_worst = 400u64 * 400 * 2;
    assert!(
        st.index_candidates < naive_worst / 4,
        "index visited {} candidates, naive bound {naive_worst}",
        st.index_candidates
    );
}
