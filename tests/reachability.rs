//! Backward-reachability fixed points against the oracle, across engines.

use presat::circuit::{embedded, generators, Circuit};
use presat::preimage::{
    backward_reach, oracle, BddPreimage, PreimageEngine, ReachOptions, SatPreimage, StateSet,
};

fn check_reach(circuit: &Circuit, target: &StateSet) {
    let n = circuit.num_latches();
    let expect = oracle::backward_reachable_bits(circuit, target);
    let engines: Vec<Box<dyn PreimageEngine>> = vec![
        Box::new(SatPreimage::success_driven()),
        Box::new(SatPreimage::min_blocking()),
        Box::new(BddPreimage::substitution()),
    ];
    for engine in engines {
        let report = backward_reach(engine.as_ref(), circuit, target, ReachOptions::default());
        assert!(report.converged, "{} did not converge", engine.name());
        assert_eq!(
            report.reached_states,
            expect.len() as u128,
            "{} wrong cardinality on {}",
            engine.name(),
            circuit.name()
        );
        for bits in 0..(1u64 << n) {
            assert_eq!(
                report.reached.contains_bits(bits, n),
                expect.contains(&bits),
                "{} wrong membership of {bits:b} on {}",
                engine.name(),
                circuit.name()
            );
        }
    }
}

#[test]
fn counter_chain() {
    let c = generators::counter(4, false);
    check_reach(&c, &StateSet::from_state_bits(0, 4));
}

#[test]
fn counter_with_enable_partial_target() {
    let c = generators::counter(3, true);
    check_reach(&c, &StateSet::from_partial(&[(2, true)]));
}

#[test]
fn lfsr_cycles() {
    let c = generators::lfsr(5);
    check_reach(&c, &StateSet::from_state_bits(1, 5));
}

#[test]
fn shift_register_full() {
    let c = generators::shift_register(4);
    check_reach(&c, &StateSet::from_state_bits(0b1111, 4));
}

#[test]
fn parity_mixed_target() {
    let c = generators::parity(3);
    check_reach(&c, &StateSet::from_partial(&[(3, true), (0, false)]));
}

#[test]
fn s27_every_singleton() {
    let c = embedded::s27().unwrap();
    for bits in 0..8 {
        check_reach(&c, &StateSet::from_state_bits(bits, 3));
    }
}

#[test]
fn frontier_sizes_are_monotone_in_reached() {
    let c = generators::counter(4, false);
    let report = backward_reach(
        &SatPreimage::success_driven(),
        &c,
        &StateSet::from_state_bits(7, 4),
        ReachOptions::default(),
    );
    let mut prev = 0u128;
    for row in &report.iterations {
        assert!(row.reached_states >= prev, "reached set must grow");
        prev = row.reached_states;
    }
}

#[test]
fn random_circuits_reach() {
    for seed in 0..4 {
        let c = generators::random_dag(2, 4, 25, seed + 100);
        check_reach(&c, &StateSet::from_state_bits(seed % 16, 4));
    }
}
