//! Determinism suite for the parallel cube-partitioned enumeration.
//!
//! The contract under test: at **every** thread count, the parallel engine
//! produces a [`CubeSet`] that is not merely semantically equal to the
//! sequential success-driven engine's output but *structurally identical* —
//! the same cubes in the same order — and a solution graph of exactly the
//! same shape. Work counters (decisions, conflicts) may differ with
//! scheduling; solutions and cubes may not.

use presat::allsat::{
    enumerate_detailed, AllSatEngine, AllSatProblem, ParallelAllSat, SuccessDrivenAllSat,
};
use presat::circuit::generators;
use presat::logic::{truth_table, Cnf, Lit, Var};
use presat::preimage::{backward_reach, PreimageEngine, ReachOptions, SatPreimage, StateSet};

const JOB_COUNTS: [usize; 4] = [1, 2, 4, 7];

fn lit(v: usize, pos: bool) -> Lit {
    Lit::with_phase(Var::new(v), pos)
}

fn random_cnf(seed: u64, n: usize, m: usize) -> Cnf {
    use presat::logic::rng::SplitMix64;
    let mut rng = SplitMix64::seed_from_u64(seed);
    let mut cnf = Cnf::new(n);
    for _ in 0..m {
        let c: Vec<Lit> = (0..3)
            .map(|_| lit(rng.gen_range(0..n), rng.gen_bool(0.5)))
            .collect();
        cnf.add_clause(c);
    }
    cnf
}

/// Thread count for the suite-wide smoke test, from `PRESAT_TEST_JOBS`
/// (default 4). `scripts/verify.sh` runs the suite at both 1 and 4.
fn env_jobs() -> usize {
    std::env::var("PRESAT_TEST_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Adaptive cube-and-conquer on/off for the env-driven tests, from
/// `PRESAT_TEST_ADAPTIVE` (default 1 = adaptive). `scripts/verify.sh`
/// runs the suite at both 0 and 1, so both partitioners get the full
/// determinism treatment.
fn env_adaptive() -> bool {
    std::env::var("PRESAT_TEST_ADAPTIVE")
        .ok()
        .and_then(|v| v.parse::<u8>().ok())
        .map(|v| v != 0)
        .unwrap_or(true)
}

#[test]
fn enumeration_is_deterministic_across_thread_counts() {
    for seed in 0..10 {
        let n = 9;
        let cnf = random_cnf(seed, n, 20);
        let important: Vec<Var> = Var::range(6).collect();
        let problem = AllSatProblem::new(cnf.clone(), important.clone());
        let seq = SuccessDrivenAllSat::new().enumerate(&problem);
        let expect = truth_table::project_models_set(&cnf, &important);
        assert!(
            seq.cubes.semantically_eq(&expect, &important),
            "sequential engine wrong on seed {seed}"
        );
        for jobs in JOB_COUNTS {
            let par = ParallelAllSat::new(jobs).enumerate(&problem);
            // Structural identity: same cubes, same order.
            assert_eq!(par.cubes, seq.cubes, "seed {seed}, jobs {jobs}");
            // And the merged graph matches the sequential one node count
            // for node count (reduced DAGs of equal functions are
            // isomorphic).
            assert_eq!(
                par.stats.graph_nodes, seq.stats.graph_nodes,
                "seed {seed}, jobs {jobs}"
            );
            assert_eq!(par.stats.cubes_emitted, seq.stats.cubes_emitted);
        }
    }
}

#[test]
fn circuit_preimage_cubes_identical_at_every_thread_count() {
    let circuits = [
        generators::parity(6),
        generators::counter(6, true),
        generators::comparator(4),
        generators::random_dag(5, 6, 50, 42),
    ];
    for c in &circuits {
        let target = StateSet::from_partial(&[(0, true)]);
        let seq = SatPreimage::success_driven().preimage(c, &target);
        for jobs in JOB_COUNTS {
            // Gate forced open: this test is about the fleet, so it must
            // not silently fall back to the sequential path on small
            // encodings or low-parallelism CI hosts.
            let par = SatPreimage::success_driven()
                .with_jobs(jobs)
                .with_par_threshold(0)
                .preimage(c, &target);
            assert_eq!(
                par.states.cubes(),
                seq.states.cubes(),
                "{} at jobs={jobs}",
                c.name()
            );
        }
    }
}

#[test]
fn split_storm_enumeration_is_bit_identical() {
    // Split threshold 1 makes every cube that survives a single conflict
    // split — the cube tree fans out as hard as it ever can, with split
    // *timing* fully scheduler-dependent. The output must not move, in
    // either partitioning mode, at any thread count.
    for seed in 0..6 {
        let n = 9;
        let cnf = random_cnf(200 + seed, n, 22);
        let important: Vec<Var> = Var::range(6).collect();
        let problem = AllSatProblem::new(cnf, important);
        let seq = SuccessDrivenAllSat::new().enumerate(&problem);
        for jobs in JOB_COUNTS {
            for adaptive in [true, false] {
                let par = ParallelAllSat::new(jobs)
                    .with_adaptive(adaptive)
                    .with_split_threshold(1)
                    .enumerate(&problem);
                assert_eq!(
                    par.cubes, seq.cubes,
                    "seed {seed}, jobs {jobs}, adaptive {adaptive}"
                );
                assert_eq!(
                    par.stats.graph_nodes, seq.stats.graph_nodes,
                    "seed {seed}, jobs {jobs}, adaptive {adaptive}"
                );
            }
        }
    }
}

#[test]
fn split_storm_preimages_identical_on_every_circuit_family() {
    // One representative of every embedded circuit family, under forced
    // splitting (threshold 1) with the spawn gate disabled so even the
    // tiny encodings really run the fleet.
    let circuits = [
        generators::counter(5, false),
        generators::counter(5, true),
        generators::parity(5),
        generators::comparator(3),
        generators::round_robin_arbiter(3),
        generators::shift_register(6),
        generators::lfsr(5),
        generators::random_dag(4, 5, 40, 7),
        presat::circuit::embedded::s27().unwrap(),
        presat::circuit::embedded::ctl2().unwrap(),
    ];
    for c in &circuits {
        let target = StateSet::from_partial(&[(0, true)]);
        let seq = SatPreimage::success_driven().preimage(c, &target);
        for jobs in [2, 4, 7] {
            let par = SatPreimage::success_driven()
                .with_jobs(jobs)
                .with_split_threshold(1)
                .with_par_threshold(0)
                .preimage(c, &target);
            assert_eq!(
                par.states.cubes(),
                seq.states.cubes(),
                "{} at jobs={jobs} under split storm",
                c.name()
            );
            assert_eq!(par.stats.graph_nodes, seq.stats.graph_nodes);
        }
    }
}

#[test]
fn per_cube_work_sums_to_merged_totals() {
    // The per-cube CubeDone trace partitions the solver work: its
    // solver-call counts must sum exactly to the merged stats, and the
    // emitted solution count must match the sequential engine exactly
    // (decisions/conflicts legitimately vary with scheduling).
    for seed in [1, 5, 9] {
        let cnf = random_cnf(seed, 8, 16);
        let important: Vec<Var> = Var::range(6).collect();
        let problem = AllSatProblem::new(cnf, important);
        let seq = SuccessDrivenAllSat::new().enumerate(&problem);
        for jobs in [2, 4] {
            let engine = ParallelAllSat::new(jobs);
            let (result, per_cube) = enumerate_detailed(&engine, &problem);
            let summed: u64 = per_cube.iter().map(|&(_, calls)| calls).sum();
            assert_eq!(
                summed, result.stats.solver_calls,
                "seed {seed} jobs {jobs}: per-cube solver calls must sum"
            );
            assert_eq!(result.stats.cubes_emitted, seq.stats.cubes_emitted);
            assert_eq!(result.cubes, seq.cubes);
        }
    }
}

#[test]
fn backward_reach_agrees_at_env_thread_count() {
    // Exercised by scripts/verify.sh at PRESAT_TEST_JOBS=1 and =4: the
    // whole fixed-point loop (many chained preimages) must be oblivious to
    // the thread count.
    let jobs = env_jobs();
    let adaptive = env_adaptive();
    let c = generators::counter(5, false);
    let target = StateSet::from_state_bits(0x1F, 5);
    let seq = backward_reach(
        &SatPreimage::success_driven(),
        &c,
        &target,
        ReachOptions::default(),
    );
    let par = backward_reach(
        &SatPreimage::success_driven()
            .with_jobs(jobs)
            .with_adaptive(adaptive)
            .with_par_threshold(0),
        &c,
        &target,
        ReachOptions::default(),
    );
    assert_eq!(par.reached_states, seq.reached_states);
    assert_eq!(par.iterations.len(), seq.iterations.len());
    assert_eq!(par.converged, seq.converged);
    assert_eq!(par.reached.cubes(), seq.reached.cubes());
}

#[test]
fn reach_parallel_threshold_knob_never_changes_results() {
    // The per-run spawn-gate override: forcing the gate fully open
    // (threshold 0: every step fans out) and fully closed (u64::MAX:
    // every step sequential) must both reproduce the sequential fixed
    // point exactly — the knob trades overhead, never answers.
    let c = generators::counter(5, false);
    let target = StateSet::from_state_bits(0x1F, 5);
    let seq = backward_reach(
        &SatPreimage::success_driven(),
        &c,
        &target,
        ReachOptions::default(),
    );
    for threshold in [0, u64::MAX] {
        let par = backward_reach(
            &SatPreimage::success_driven().with_jobs(4),
            &c,
            &target,
            ReachOptions::default().with_parallel_threshold(threshold),
        );
        assert_eq!(par.reached.cubes(), seq.reached.cubes(), "threshold {threshold}");
        assert_eq!(par.reached_states, seq.reached_states);
        assert_eq!(par.iterations.len(), seq.iterations.len());
    }
}

#[test]
fn suite_smoke_at_env_thread_count() {
    // Every workload family in miniature, at the env-selected job count
    // and partitioning mode.
    let jobs = env_jobs();
    let adaptive = env_adaptive();
    for seed in 0..4 {
        let cnf = random_cnf(100 + seed, 8, 18);
        let important: Vec<Var> = Var::range(5).collect();
        let problem = AllSatProblem::new(cnf.clone(), important.clone());
        let expect = truth_table::project_models_set(&cnf, &important);
        let r = ParallelAllSat::new(jobs)
            .with_adaptive(adaptive)
            .enumerate(&problem);
        assert!(
            r.cubes.semantically_eq(&expect, &important),
            "seed {seed} at jobs={jobs} adaptive={adaptive}"
        );
    }
}
